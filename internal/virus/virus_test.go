package virus

import (
	"math"
	"testing"
	"time"
)

func TestCalibratedProfilesValidate(t *testing.T) {
	for _, p := range Profiles() {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestProfileByName(t *testing.T) {
	p, err := ProfileByName("IO")
	if err != nil || p.Name != "IO" {
		t.Fatalf("ProfileByName(IO) = %+v, %v", p, err)
	}
	if _, err := ProfileByName("GPU"); err == nil {
		t.Fatal("unknown profile should fail")
	}
}

func TestProfileValidation(t *testing.T) {
	bad := []Profile{
		{PeakFraction: 0, SustainFraction: 0.5},
		{PeakFraction: 1.5, SustainFraction: 0.5},
		{PeakFraction: 0.8, SustainFraction: 0.9}, // sustain above peak
		{PeakFraction: 0.8, SustainFraction: 0},
		{PeakFraction: 0.8, SustainFraction: 0.5, RampTime: -time.Second},
		{PeakFraction: 0.8, SustainFraction: 0.5, Jitter: 1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("profile %d should fail", i)
		}
	}
}

func TestProfileOrderingMatchesPaper(t *testing.T) {
	// CPU viruses form the tallest, sharpest spikes; IO the weakest.
	if !(CPUIntensive.PeakFraction > MemIntensive.PeakFraction &&
		MemIntensive.PeakFraction > IOIntensive.PeakFraction) {
		t.Error("peak fractions should order CPU > Mem > IO")
	}
	if !(CPUIntensive.RampTime < MemIntensive.RampTime &&
		MemIntensive.RampTime < IOIntensive.RampTime) {
		t.Error("ramp times should order CPU < Mem < IO")
	}
}

func TestEffectivePeakRampAttenuation(t *testing.T) {
	// A 1 s spike: CPU virus nearly reaches peak; IO virus falls well short.
	cpu := CPUIntensive.EffectivePeak(time.Second)
	io := IOIntensive.EffectivePeak(time.Second)
	if cpu < 0.9*CPUIntensive.PeakFraction {
		t.Errorf("CPU 1s effective peak %v too low", cpu)
	}
	if io > 0.75*IOIntensive.PeakFraction {
		t.Errorf("IO 1s effective peak %v should be strongly attenuated", io)
	}
	// Wider spikes approach the nominal peak for every profile.
	for _, p := range Profiles() {
		narrow := p.EffectivePeak(500 * time.Millisecond)
		wide := p.EffectivePeak(4 * time.Second)
		if wide <= narrow {
			t.Errorf("%s: wider spike should be more effective (%v vs %v)",
				p.Name, wide, narrow)
		}
		if wide > p.PeakFraction {
			t.Errorf("%s: effective peak %v above nominal", p.Name, wide)
		}
	}
	if got := CPUIntensive.EffectivePeak(0); got != 0 {
		t.Errorf("zero-width spike should be 0, got %v", got)
	}
}

func TestEffectivePeakZeroRamp(t *testing.T) {
	p := Profile{Name: "x", PeakFraction: 0.8, SustainFraction: 0.5}
	if got := p.EffectivePeak(time.Second); got != 0.8 {
		t.Fatalf("zero-ramp effective peak = %v, want 0.8", got)
	}
}

func TestAttackConfigValidation(t *testing.T) {
	bad := []Config{
		{Profile: Profile{}},
		{Profile: CPUIntensive, SpikesPerMinute: 120},
		{Profile: CPUIntensive, RestFraction: 2},
		{Profile: CPUIntensive, SpikeWidth: time.Minute, SpikesPerMinute: 2},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d should fail", i)
		}
	}
	if _, err := New(Config{Profile: CPUIntensive}); err != nil {
		t.Errorf("default config should validate: %v", err)
	}
}

func TestAttackPhaseProgression(t *testing.T) {
	a := MustNew(Config{
		Profile:      CPUIntensive,
		PrepDuration: 2 * time.Second,
		MaxPhaseI:    10 * time.Second,
	})
	const dt = 100 * time.Millisecond
	if a.Phase() != Preparation {
		t.Fatal("should start in Preparation")
	}
	for t := time.Duration(0); t < 3*time.Second; t += dt {
		a.Step(dt, Observation{})
	}
	if a.Phase() != PhaseI {
		t.Fatalf("after prep: %v, want Phase-I", a.Phase())
	}
	for t := time.Duration(0); t < 11*time.Second; t += dt {
		a.Step(dt, Observation{})
	}
	if a.Phase() != PhaseII {
		t.Fatalf("after MaxPhaseI: %v, want Phase-II", a.Phase())
	}
}

func TestAttackLearnsFromCapping(t *testing.T) {
	a := MustNew(Config{
		Profile:           CPUIntensive,
		PrepDuration:      time.Second,
		CapTicksToConfirm: 3,
		MaxPhaseI:         time.Hour,
	})
	const dt = 100 * time.Millisecond
	// Through prep into Phase I.
	for t := time.Duration(0); t < 2*time.Second; t += dt {
		a.Step(dt, Observation{})
	}
	if a.Phase() != PhaseI {
		t.Fatalf("phase = %v", a.Phase())
	}
	// 20 s of uncapped drain, then capping starts.
	for t := time.Duration(0); t < 20*time.Second; t += dt {
		a.Step(dt, Observation{})
	}
	// One isolated capped tick is not enough.
	a.Step(dt, Observation{Capped: true})
	a.Step(dt, Observation{Capped: false})
	if a.Phase() != PhaseI {
		t.Fatal("single capped tick should not trigger Phase II")
	}
	for i := 0; i < 3; i++ {
		a.Step(dt, Observation{Capped: true})
	}
	if a.Phase() != PhaseII {
		t.Fatal("sustained capping should trigger Phase II")
	}
	if a.LearnedDrainTime() < 19*time.Second {
		t.Fatalf("learned drain %v too short", a.LearnedDrainTime())
	}
}

func TestAttackPhaseIIUtilizationShape(t *testing.T) {
	a := MustNew(Config{
		Profile:         CPUIntensive,
		PrepDuration:    time.Second,
		MaxPhaseI:       time.Second,
		SpikeWidth:      time.Second,
		SpikesPerMinute: 6,
		RestFraction:    0.3,
	})
	const dt = 100 * time.Millisecond
	var maxU, minU = 0.0, 1.0
	var elapsed time.Duration
	for ; elapsed < 3*time.Second; elapsed += dt {
		a.Step(dt, Observation{})
	}
	if a.Phase() != PhaseII {
		t.Fatalf("phase = %v", a.Phase())
	}
	for t := time.Duration(0); t < 2*time.Minute; t += dt {
		u := a.Step(dt, Observation{})
		if u > maxU {
			maxU = u
		}
		if u < minU {
			minU = u
		}
	}
	if maxU < 0.9 {
		t.Errorf("spikes never reached high utilization: max %v", maxU)
	}
	if minU > 0.45 {
		t.Errorf("rest level too high: min %v", minU)
	}
	if got := a.SpikesLaunched(); got < 10 || got > 14 {
		t.Errorf("spikes launched in 2 min at 6/min = %d, want ~12", got)
	}
}

func TestAttackDeterminism(t *testing.T) {
	run := func() []float64 {
		a := MustNew(Config{Profile: MemIntensive, Seed: 5,
			PrepDuration: time.Second, MaxPhaseI: time.Second})
		var out []float64
		for i := 0; i < 600; i++ {
			out = append(out, a.Step(100*time.Millisecond, Observation{}))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at tick %d", i)
		}
	}
}

func TestAttackUtilizationBounds(t *testing.T) {
	a := MustNew(Config{Profile: CPUIntensive, Seed: 9,
		PrepDuration: time.Second, MaxPhaseI: time.Second})
	for i := 0; i < 10000; i++ {
		u := a.Step(100*time.Millisecond, Observation{})
		if u < 0 || u > 1 {
			t.Fatalf("utilization out of bounds at tick %d: %v", i, u)
		}
	}
}

func TestIORampBluntsNarrowSpikes(t *testing.T) {
	// Drive both viruses open-loop in Phase II with 1 s spikes; the IO
	// virus's achieved peak should sit well below the CPU virus's.
	peak := func(p Profile) float64 {
		a := MustNew(Config{Profile: p, Seed: 1,
			PrepDuration: time.Second, MaxPhaseI: time.Second,
			SpikeWidth: time.Second, SpikesPerMinute: 6})
		m := 0.0
		for i := 0; i < 3000; i++ {
			if u := a.Step(100*time.Millisecond, Observation{}); u > m {
				m = u
			}
		}
		return m
	}
	cpu, io := peak(CPUIntensive), peak(IOIntensive)
	if io >= cpu-0.2 {
		t.Fatalf("IO peak %v should trail CPU peak %v by >0.2", io, cpu)
	}
}

func TestScenarioTraces(t *testing.T) {
	for _, s := range Scenarios() {
		tr := s.UtilizationTrace(CPUIntensive, 2*time.Minute, 100*time.Millisecond, 3)
		if tr.Len() != 1200 {
			t.Fatalf("%s: trace length %d", s.Name, tr.Len())
		}
		if tr.Max() < 0.9 {
			t.Errorf("%s: no spikes visible (max %v)", s.Name, tr.Max())
		}
	}
	// Dense attacks put more energy into the window than sparse ones.
	dense := DenseAttack.UtilizationTrace(CPUIntensive, 5*time.Minute, 100*time.Millisecond, 3)
	sparse := SparseAttack.UtilizationTrace(CPUIntensive, 5*time.Minute, 100*time.Millisecond, 3)
	if dense.Mean() <= sparse.Mean() {
		t.Errorf("dense mean %v should exceed sparse mean %v", dense.Mean(), sparse.Mean())
	}
}

func TestPhaseString(t *testing.T) {
	if Preparation.String() != "Preparation" || PhaseI.String() != "Phase-I" ||
		PhaseII.String() != "Phase-II" {
		t.Error("phase names wrong")
	}
	if Phase(9).String() != "Phase(9)" {
		t.Error("unknown phase formatting wrong")
	}
}

func TestSpikeJitterVariesHeights(t *testing.T) {
	a := MustNew(Config{Profile: IOIntensive, Seed: 21,
		PrepDuration: time.Second, MaxPhaseI: time.Second,
		SpikeWidth: 4 * time.Second, SpikesPerMinute: 6})
	// Collect the peak of each spike over several spikes.
	const dt = 100 * time.Millisecond
	var peaks []float64
	cur := 0.0
	inSpike := false
	for i := 0; i < 6000; i++ {
		u := a.Step(dt, Observation{})
		if u > 0.5 {
			inSpike = true
			if u > cur {
				cur = u
			}
		} else if inSpike {
			peaks = append(peaks, cur)
			cur, inSpike = 0, false
		}
	}
	if len(peaks) < 3 {
		t.Fatalf("too few spikes observed: %d", len(peaks))
	}
	varies := false
	for i := 1; i < len(peaks); i++ {
		if math.Abs(peaks[i]-peaks[0]) > 1e-6 {
			varies = true
		}
	}
	if !varies {
		t.Error("jitter produced identical spike heights")
	}
}

func TestPhaseJitterValidation(t *testing.T) {
	if _, err := New(Config{Profile: CPUIntensive, PhaseJitter: 1.0}); err == nil {
		t.Fatal("jitter of 1.0 should fail")
	}
	if _, err := New(Config{Profile: CPUIntensive, PhaseJitter: -0.1}); err == nil {
		t.Fatal("negative jitter should fail")
	}
}

func TestPhaseJitterVariesIntervals(t *testing.T) {
	run := func(jitter float64) []time.Duration {
		a := MustNew(Config{
			Profile:         CPUIntensive,
			PrepDuration:    time.Second,
			MaxPhaseI:       time.Second,
			SpikeWidth:      time.Second,
			SpikesPerMinute: 6,
			PhaseJitter:     jitter,
			Seed:            11,
		})
		const dt = 100 * time.Millisecond
		for i := 0; i < 6000; i++ { // 10 minutes
			a.Step(dt, Observation{})
		}
		return a.SpikeTimes()
	}
	regular := run(0)
	jittered := run(0.5)

	gaps := func(ts []time.Duration) []float64 {
		var out []float64
		for i := 1; i < len(ts); i++ {
			out = append(out, (ts[i] - ts[i-1]).Seconds())
		}
		return out
	}
	rg, jg := gaps(regular), gaps(jittered)
	if len(rg) < 5 || len(jg) < 5 {
		t.Fatalf("too few spikes: %d regular, %d jittered", len(rg), len(jg))
	}
	// Regular schedule: all gaps equal the 10 s period.
	for _, g := range rg {
		if math.Abs(g-10) > 0.2 {
			t.Fatalf("regular gap %v, want 10 s", g)
		}
	}
	// Jittered schedule: gaps vary materially but the mean rate holds.
	varies := false
	sum := 0.0
	for _, g := range jg {
		sum += g
		if math.Abs(g-10) > 0.5 {
			varies = true
		}
	}
	if !varies {
		t.Fatal("jittered gaps look periodic")
	}
	mean := sum / float64(len(jg))
	if mean < 8 || mean > 12 {
		t.Fatalf("jittered mean gap %v, want ~10 s", mean)
	}
}

func TestPhaseJitterKeepsSpikeShape(t *testing.T) {
	a := MustNew(Config{
		Profile:         CPUIntensive,
		PrepDuration:    time.Second,
		MaxPhaseI:       time.Second,
		SpikeWidth:      2 * time.Second,
		SpikesPerMinute: 6,
		PhaseJitter:     0.3,
		Seed:            5,
	})
	const dt = 100 * time.Millisecond
	maxU, minU := 0.0, 1.0
	for i := 0; i < 3000; i++ {
		u := a.Step(dt, Observation{})
		if i > 100 {
			if u > maxU {
				maxU = u
			}
			if u < minU {
				minU = u
			}
		}
	}
	if maxU < 0.9 {
		t.Fatalf("jittered spikes never peak: max %v", maxU)
	}
	if minU > 0.45 {
		t.Fatalf("jittered schedule never rests: min %v", minU)
	}
}
