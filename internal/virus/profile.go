// Package virus models the malicious loads of the paper's threat model:
// power viruses that first drain a rack's batteries with sustained
// "visible" peaks (Phase I) and then fire short "hidden" spikes to trip
// the circuit breaker (Phase II).
//
// The three virus profiles correspond to the paper's evaluated attack
// vehicles — a CPU-intensive ray tracer (Tachyon), a memory bandwidth
// hog (STREAM) and an I/O flood (Apache benchmark) — reduced to the three
// parameters the downstream experiments actually exercise: how high a
// spike the virus can form, how fast it ramps, and how noisy its peak is.
//
// Concurrency: Profile values are immutable and freely shareable, but an
// Attack is a stateful closed-loop controller stepped by one simulation
// run — it is not safe for concurrent use and must not be reused across
// runs. Build one Attack per sim.Run, inside the runner job that owns it.
package virus

import (
	"fmt"
	"math"
	"time"
)

// Profile characterizes one class of power virus.
type Profile struct {
	// Name identifies the profile in reports ("CPU", "Mem", "IO").
	Name string
	// PeakFraction is the highest server utilization the virus can drive
	// during a spike. CPU viruses saturate the machine; I/O viruses top
	// out well below nameplate (the paper: "the I/O intensive power virus
	// cannot effectively trigger high spikes").
	PeakFraction float64
	// SustainFraction is the utilization the virus holds during Phase-I
	// visible peaks (sustained load is easier to form than a sharp spike).
	SustainFraction float64
	// RampTime is the first-order time constant with which the server's
	// power follows the virus's demand. Long ramps blunt narrow spikes.
	RampTime time.Duration
	// Jitter is the relative peak-height noise per spike, in [0, 1).
	Jitter float64
}

// The calibrated profiles. Peak/sustain fractions and ramp times are
// chosen to reproduce the qualitative testbed behaviour in the paper's
// Figure 8: CPU viruses form the sharpest, tallest spikes; memory viruses
// are close behind; I/O viruses ramp slowly and peak low, needing more
// nodes or wider spikes for the same effect.
var (
	CPUIntensive = Profile{
		Name:            "CPU",
		PeakFraction:    1.0,
		SustainFraction: 0.95,
		RampTime:        50 * time.Millisecond,
		Jitter:          0.03,
	}
	MemIntensive = Profile{
		Name:            "Mem",
		PeakFraction:    0.90,
		SustainFraction: 0.85,
		RampTime:        150 * time.Millisecond,
		Jitter:          0.05,
	}
	IOIntensive = Profile{
		Name:            "IO",
		PeakFraction:    0.72,
		SustainFraction: 0.68,
		RampTime:        600 * time.Millisecond,
		Jitter:          0.10,
	}
)

// Profiles lists the three calibrated profiles in the order the paper's
// figures present them.
func Profiles() []Profile {
	return []Profile{CPUIntensive, MemIntensive, IOIntensive}
}

// ProfileByName returns the calibrated profile with the given name.
func ProfileByName(name string) (Profile, error) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("virus: unknown profile %q", name)
}

// Validate reports a malformed profile. The comparisons are written in
// accept-range form (negated) so NaN fields are rejected rather than
// slipping past both sides of a reject-range check.
func (p Profile) Validate() error {
	if !(p.PeakFraction > 0 && p.PeakFraction <= 1) {
		return fmt.Errorf("virus: peak fraction %v out of (0,1]", p.PeakFraction)
	}
	if !(p.SustainFraction > 0 && p.SustainFraction <= p.PeakFraction) {
		return fmt.Errorf("virus: sustain fraction %v out of (0, peak=%v]",
			p.SustainFraction, p.PeakFraction)
	}
	if p.RampTime < 0 {
		return fmt.Errorf("virus: negative ramp time %v", p.RampTime)
	}
	if !(p.Jitter >= 0 && p.Jitter < 1) {
		return fmt.Errorf("virus: jitter %v out of [0,1)", p.Jitter)
	}
	return nil
}

// EffectivePeak returns the average utilization a spike of the given width
// actually achieves, accounting for the first-order ramp: a spike narrower
// than the ramp time barely registers. (Mean of 1−e^(−t/τ) over [0, w].)
func (p Profile) EffectivePeak(width time.Duration) float64 {
	if width <= 0 {
		return 0
	}
	tau := p.RampTime.Seconds()
	if tau == 0 {
		return p.PeakFraction
	}
	w := width.Seconds()
	frac := 1 - tau/w*(1-math.Exp(-w/tau))
	return p.PeakFraction * frac
}
