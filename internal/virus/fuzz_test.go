package virus_test

import (
	"math"
	"testing"
	"time"

	"repro/internal/schemes"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/virus"
)

// FuzzVirusProfile hardens the attack controller and the engine against
// arbitrary attack configurations: whatever profile and schedule the
// fuzzer invents, virus.New must either reject it or hand back a
// controller whose demand stays a finite utilization in [0,1] — and a
// full engine run driven by it must never panic.
func FuzzVirusProfile(f *testing.F) {
	// The calibrated profiles and schedules near the paper's operating
	// points, plus degenerate and hostile corners.
	f.Add(1.0, 0.95, int64(50*time.Millisecond), 0.03,
		int64(4*time.Second), 6.0, 0.45, int64(time.Second), int64(time.Second), 0.0, 1.0, uint64(1))
	f.Add(0.72, 0.68, int64(600*time.Millisecond), 0.10,
		int64(time.Second), 1.0, 0.0, int64(0), int64(0), 0.5, 0.25, uint64(99))
	f.Add(0.90, 0.85, int64(150*time.Millisecond), 0.05,
		int64(59*time.Second), 1.0, 1.0, int64(-5), int64(-5), 0.99, 0.0, uint64(7))
	f.Add(math.NaN(), math.Inf(1), int64(-1), math.NaN(),
		int64(math.MaxInt64), math.NaN(), math.Inf(-1), int64(math.MinInt64), int64(1), math.NaN(), math.NaN(), uint64(0))
	f.Fuzz(func(t *testing.T, peak, sustain float64, rampNs int64, jitter float64,
		widthNs int64, perMin, rest float64, prepNs, maxPhaseINs int64,
		phaseJitter, ampScale float64, seed uint64) {
		cfg := virus.Config{
			Profile: virus.Profile{
				Name:            "fuzz",
				PeakFraction:    peak,
				SustainFraction: sustain,
				RampTime:        time.Duration(rampNs),
				Jitter:          jitter,
			},
			SpikeWidth:      time.Duration(widthNs),
			SpikesPerMinute: perMin,
			RestFraction:    rest,
			PrepDuration:    time.Duration(prepNs),
			MaxPhaseI:       time.Duration(maxPhaseINs),
			PhaseJitter:     phaseJitter,
			AmplitudeScale:  ampScale,
			Seed:            seed,
		}
		atk, err := virus.New(cfg)
		if err != nil {
			return
		}
		// Step the controller through every phase with both observation
		// values: the demand must stay a finite utilization.
		const tick = 100 * time.Millisecond
		for i := 0; i < 600; i++ {
			u := atk.Step(tick, virus.Observation{Capped: i%7 == 0})
			if math.IsNaN(u) || u < 0 || u > 1 {
				t.Fatalf("step %d (phase %v): demand %v out of [0,1]", i, atk.Phase(), u)
			}
		}
		if atk.SpikesLaunched() != len(atk.SpikeTimes()) {
			t.Fatalf("SpikesLaunched=%d but %d spike times recorded",
				atk.SpikesLaunched(), len(atk.SpikeTimes()))
		}
		// A full engine run under the same configuration must not panic.
		// (sim.Run may legitimately return an error for configs it
		// rejects; this guards the engine's arithmetic, not its checks.)
		bg := make([]*stats.Series, 4)
		for i := range bg {
			s := stats.NewSeries(time.Hour)
			s.Append(0.4)
			s.Append(0.4)
			bg[i] = s
		}
		_, err = sim.Run(sim.Config{
			Key:            "fuzz/virus",
			Racks:          1,
			ServersPerRack: 4,
			Tick:           tick,
			Duration:       3 * time.Second,
			Background:     bg,
			Attack: &sim.AttackSpec{
				Servers: []int{0, 1},
				Attack:  virus.MustNew(cfg), // fresh controller; atk above is spent
			},
		}, schemes.NewPS(schemes.Options{}))
		if err != nil {
			t.Fatalf("engine rejected a validated attack config: %v", err)
		}
	})
}
