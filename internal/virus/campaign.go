package virus

import (
	"fmt"
	"time"

	"repro/internal/stats"
)

// CampaignConfig describes a coordinated multi-group power-attack
// campaign: Soltan et al.'s high-wattage botnet model, where many small
// actors phase-lock their spikes instead of one big actor spiking alone.
// Every group runs the same two-phase attack Config, but group g idles
// g×PhaseOffset longer before starting — so the groups' Phase-II spike
// trains fire as a staggered barrage rather than one synchronized pulse,
// which is exactly the schedule shape a per-rack periodicity detector
// has the hardest time locking onto.
//
// A campaign is a pure parameterization: Configs derives one attack
// Config per group (with an independent jitter stream per group, keyed
// by the base seed and the group index), and Build instantiates the
// per-group controllers. The caller places each group on its own servers
// (sim.Config.Attacks) — typically one group per rack.
type CampaignConfig struct {
	// Base is the per-group attack configuration.
	Base Config
	// Groups is the number of phase-locked actor groups.
	Groups int
	// PhaseOffset staggers consecutive groups' start times: group g
	// begins its preparation (and therefore its Phase-I drain and its
	// Phase-II spikes) g×PhaseOffset after group 0.
	PhaseOffset time.Duration
}

// Validate reports a malformed campaign.
func (c CampaignConfig) Validate() error {
	if c.Groups < 1 {
		return fmt.Errorf("virus: campaign needs at least one group, got %d", c.Groups)
	}
	if c.Groups > 4096 {
		return fmt.Errorf("virus: campaign of %d groups out of [1,4096]", c.Groups)
	}
	if c.PhaseOffset < 0 {
		return fmt.Errorf("virus: negative phase offset %v", c.PhaseOffset)
	}
	return c.Base.Validate()
}

// Configs derives the per-group attack configurations: defaults applied,
// preparation staggered by the phase offset, and each group's spike
// jitter seeded independently via stats.DeriveSeed — so the whole
// campaign is reproducible from (Base, Groups, PhaseOffset) alone and
// two groups never share a random stream.
func (c CampaignConfig) Configs() ([]Config, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	base := c.Base.withDefaults()
	out := make([]Config, c.Groups)
	for g := range out {
		cfg := base
		cfg.PrepDuration += time.Duration(g) * c.PhaseOffset
		cfg.Seed = stats.DeriveSeed(c.Base.Seed, fmt.Sprintf("virus/campaign/%d", g))
		out[g] = cfg
	}
	return out, nil
}

// Build instantiates one attack controller per group. Each controller is
// single-run state (see Attack); build a fresh campaign per simulation.
func (c CampaignConfig) Build() ([]*Attack, error) {
	cfgs, err := c.Configs()
	if err != nil {
		return nil, err
	}
	out := make([]*Attack, len(cfgs))
	for g, cfg := range cfgs {
		a, err := New(cfg)
		if err != nil {
			return nil, fmt.Errorf("virus: campaign group %d: %w", g, err)
		}
		out[g] = a
	}
	return out, nil
}
