package battery

import (
	"math"
	"testing"
	"time"

	"repro/internal/units"
)

// FuzzKiBaM hardens the kinetic battery model: for any configuration
// NewKiBaM accepts and any charge/discharge/idle sequence, the wells must
// stay within their sub-capacities — SOC and AvailableSOC in [0,1], never
// NaN — and every power exchanged must be finite, non-negative and within
// the request and the rating. Configurations NewKiBaM rejects (including
// NaN/Inf fields, which the accept-range validation is there to catch)
// are skipped.
func FuzzKiBaM(f *testing.F) {
	// The paper's operating points: a rack cabinet, a μDEB-scale bank, a
	// deeply discharged start, a leaky cell, plus hostile floats.
	f.Add(float64(260640), 0.62, 4.5e-4, 1.0, 0.0, []byte("ddddcciiddcc"))
	f.Add(float64(1200), 0.3, 1e-3, 0.05, 0.03, []byte{0, 255, 17, 84, 200, 3})
	f.Add(float64(1e9), 0.99, 1e-6, 1.0, 0.0, []byte("cccccccc"))
	f.Add(float64(1), 0.62, 4.5e-4, 0.5, 0.9, []byte("id"))
	f.Add(math.NaN(), math.Inf(1), -1.0, 2.0, math.NaN(), []byte("d"))
	f.Fuzz(func(t *testing.T, capacity, c, k, soc, leak float64, ops []byte) {
		b, err := NewKiBaM(KiBaMConfig{
			Capacity:              units.Joules(capacity),
			C:                     c,
			K:                     k,
			InitialSOC:            soc,
			SelfDischargePerMonth: leak,
		})
		if err != nil {
			return
		}
		check := func(step int) {
			s, avail := b.SOC(), b.AvailableSOC()
			if math.IsNaN(s) || s < 0 || s > 1 {
				t.Fatalf("op %d: SOC out of [0,1]: %v", step, s)
			}
			if math.IsNaN(avail) || avail < 0 || avail > 1+1e-9 {
				t.Fatalf("op %d: AvailableSOC out of [0,1]: %v", step, avail)
			}
		}
		check(-1)
		if len(ops) > 256 {
			ops = ops[:256] // bound runtime, not coverage
		}
		for i, op := range ops {
			// Derive the op kind, power (as a multiple of the rating, so
			// both starved and saturated regimes are hit) and step width
			// from one byte each.
			dt := time.Duration(1+int(op>>4)) * 100 * time.Millisecond
			p := units.Watts(float64(op) / 32 * float64(b.MaxDischarge()))
			switch op % 3 {
			case 0:
				got := b.Discharge(p, dt)
				if math.IsNaN(float64(got)) || got < 0 || float64(got) > float64(p)+1e-9 {
					t.Fatalf("op %d: Discharge(%v) returned %v", i, p, got)
				}
				if got > b.MaxDischarge() {
					t.Fatalf("op %d: discharge %v exceeds rating %v", i, got, b.MaxDischarge())
				}
			case 1:
				got := b.Charge(p, dt)
				if math.IsNaN(float64(got)) || got < 0 || float64(got) > float64(p)+1e-9 {
					t.Fatalf("op %d: Charge(%v) returned %v", i, p, got)
				}
			case 2:
				b.Idle(dt)
			}
			check(i)
			if d := b.Deliverable(dt); math.IsNaN(float64(d)) || d < 0 {
				t.Fatalf("op %d: Deliverable = %v", i, d)
			}
		}
	})
}
