package battery

import (
	"time"

	"repro/internal/units"
)

// LVD wraps a store with a low-voltage disconnect: once the store drops
// below the cutoff SOC it is isolated from the load (discharge yields
// nothing) until recharged above the reconnect threshold. This mirrors the
// independent LVD device Facebook's battery cabinet uses (disconnect at
// 1.75 V/cell) and is exactly the behaviour a Phase-I attacker exploits:
// a disconnected battery leaves the rack with no spike protection at all.
type LVD struct {
	inner        Store
	cutoff       float64
	reconnect    float64
	disconnected bool
}

// NewLVD wraps inner with disconnect at cutoff SOC and reconnection at
// reconnect SOC. reconnect must be >= cutoff; the gap provides hysteresis.
// Typical values: cutoff 0.05, reconnect 0.20.
func NewLVD(inner Store, cutoff, reconnect float64) *LVD {
	if cutoff < 0 {
		cutoff = 0
	}
	if reconnect < cutoff {
		reconnect = cutoff
	}
	return &LVD{
		inner:        inner,
		cutoff:       cutoff,
		reconnect:    reconnect,
		disconnected: inner.SOC() <= cutoff,
	}
}

// Discharge implements Store. A disconnected battery delivers nothing.
func (l *LVD) Discharge(req units.Watts, dt time.Duration) units.Watts {
	if l.disconnected {
		l.inner.Idle(dt)
		return 0
	}
	got := l.inner.Discharge(req, dt)
	if l.inner.SOC() <= l.cutoff {
		l.disconnected = true
	}
	return got
}

// Charge implements Store. Charging is always permitted and may reconnect
// the battery.
func (l *LVD) Charge(offered units.Watts, dt time.Duration) units.Watts {
	got := l.inner.Charge(offered, dt)
	if l.disconnected && l.inner.SOC() >= l.reconnect {
		l.disconnected = false
	}
	return got
}

// Idle implements Store.
func (l *LVD) Idle(dt time.Duration) {
	l.inner.Idle(dt)
	// Recovery alone can lift the available well, but total SOC does not
	// rise while idle, so the disconnect state stands until recharged.
}

// SOC implements Store.
func (l *LVD) SOC() float64 { return l.inner.SOC() }

// Capacity implements Store.
func (l *LVD) Capacity() units.Joules { return l.inner.Capacity() }

// MaxDischarge implements Store. A disconnected battery cannot deliver.
func (l *LVD) MaxDischarge() units.Watts {
	if l.disconnected {
		return 0
	}
	return l.inner.MaxDischarge()
}

// MaxCharge implements Store.
func (l *LVD) MaxCharge() units.Watts { return l.inner.MaxCharge() }

// Deliverable implements Store. A disconnected battery can deliver
// nothing.
func (l *LVD) Deliverable(dt time.Duration) units.Watts {
	if l.disconnected {
		return 0
	}
	return l.inner.Deliverable(dt)
}

// AtRest implements Rester: the wrapped store must prove its own fixed
// point, and the LVD must be connected — a disconnected battery is mid
// incident (drained, waiting on recharge), never a quiescent one, and
// its Discharge path routes through inner.Idle with different
// bookkeeping than the connected path.
func (l *LVD) AtRest(dt time.Duration) bool {
	if l.disconnected {
		return false
	}
	r, ok := l.inner.(Rester)
	return ok && r.AtRest(dt)
}

// Disconnected reports whether the LVD has isolated the battery.
func (l *LVD) Disconnected() bool { return l.disconnected }

// Inner returns the wrapped store.
func (l *LVD) Inner() Store { return l.inner }
