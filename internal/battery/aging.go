package battery

import (
	"fmt"
	"math"
	"time"

	"repro/internal/units"
)

// Aging wraps a KiBaM battery with lead-acid wear tracking: cycle
// counting by the rainflow-free throughput method, depth-of-discharge
// stress, and the resulting capacity fade. The paper's related work
// (BAAT, DSN'15) motivates why a defense that redistributes discharge
// duty — as Algorithm 1 does — must respect aging: "the discharge
// algorithm should not cause accelerated aging on battery systems".
//
// The model is the standard throughput model: a lead-acid battery
// delivers roughly CycleLife × Capacity of lifetime energy when cycled at
// its rated depth of discharge; deeper discharge weights throughput by a
// stress factor, and capacity fades linearly in weighted throughput until
// end of life at 80% of nominal.
type Aging struct {
	inner *KiBaM

	// cycleLife is the rated number of full cycles at ratedDoD.
	cycleLife float64
	// ratedDoD is the depth of discharge the cycle life is quoted at.
	ratedDoD float64

	weightedThroughput float64 // joules, stress-weighted
	nominal            units.Joules
}

// AgingConfig parameterizes wear tracking.
type AgingConfig struct {
	// CycleLife is the rated full-cycle count at RatedDoD. 0 selects 500
	// (typical valve-regulated lead-acid at 50% DoD).
	CycleLife float64
	// RatedDoD is the rated depth of discharge in (0, 1]. 0 selects 0.5.
	RatedDoD float64
}

// NewAging wraps inner with wear tracking.
func NewAging(inner *KiBaM, cfg AgingConfig) (*Aging, error) {
	if inner == nil {
		return nil, fmt.Errorf("battery: aging wrapper needs a battery")
	}
	if cfg.CycleLife == 0 {
		cfg.CycleLife = 500
	}
	if cfg.CycleLife < 1 {
		return nil, fmt.Errorf("battery: cycle life %v must be >= 1", cfg.CycleLife)
	}
	if cfg.RatedDoD == 0 {
		cfg.RatedDoD = 0.5
	}
	if cfg.RatedDoD <= 0 || cfg.RatedDoD > 1 {
		return nil, fmt.Errorf("battery: rated DoD %v out of (0,1]", cfg.RatedDoD)
	}
	return &Aging{
		inner:     inner,
		cycleLife: cfg.CycleLife,
		ratedDoD:  cfg.RatedDoD,
		nominal:   inner.Capacity(),
	}, nil
}

// stressFactor weights discharge throughput by how deep the battery is:
// discharging below the rated DoD band wears the plates superlinearly
// (the exponent 1.3 is a common lead-acid fit).
func (a *Aging) stressFactor() float64 {
	depth := 1 - a.inner.SOC()
	if depth <= a.ratedDoD {
		return 1
	}
	return math.Pow(depth/a.ratedDoD, 1.3)
}

// Discharge implements Store, accumulating stress-weighted throughput.
func (a *Aging) Discharge(req units.Watts, dt time.Duration) units.Watts {
	got := a.inner.Discharge(req, dt)
	if got > 0 {
		a.weightedThroughput += float64(got.Energy(dt)) * a.stressFactor()
	}
	return got
}

// Charge implements Store.
func (a *Aging) Charge(offered units.Watts, dt time.Duration) units.Watts {
	return a.inner.Charge(offered, dt)
}

// Idle implements Store.
func (a *Aging) Idle(dt time.Duration) { a.inner.Idle(dt) }

// SOC implements Store.
func (a *Aging) SOC() float64 { return a.inner.SOC() }

// Capacity implements Store: the nominal capacity derated by fade.
func (a *Aging) Capacity() units.Joules {
	return units.Joules(float64(a.nominal) * a.HealthFactor())
}

// MaxDischarge implements Store.
func (a *Aging) MaxDischarge() units.Watts { return a.inner.MaxDischarge() }

// MaxCharge implements Store.
func (a *Aging) MaxCharge() units.Watts { return a.inner.MaxCharge() }

// Deliverable implements Store, derated by fade: a worn battery cannot
// sustain its rated rate.
func (a *Aging) Deliverable(dt time.Duration) units.Watts {
	return units.Watts(float64(a.inner.Deliverable(dt)) * a.HealthFactor())
}

// lifetimeThroughput is the weighted energy the battery can deliver
// before reaching end of life.
func (a *Aging) lifetimeThroughput() float64 {
	return a.cycleLife * a.ratedDoD * float64(a.nominal)
}

// WearFraction reports the consumed share of battery life in [0, 1].
func (a *Aging) WearFraction() float64 {
	w := a.weightedThroughput / a.lifetimeThroughput()
	if w > 1 {
		return 1
	}
	return w
}

// HealthFactor reports remaining capacity relative to nominal: fades
// linearly from 1.0 (fresh) to 0.8 (end of life).
func (a *Aging) HealthFactor() float64 {
	return 1 - 0.2*a.WearFraction()
}

// EquivalentFullCycles reports the stress-weighted full-cycle count so
// far.
func (a *Aging) EquivalentFullCycles() float64 {
	return a.weightedThroughput / (a.ratedDoD * float64(a.nominal))
}

// Inner exposes the wrapped battery.
func (a *Aging) Inner() *KiBaM { return a.inner }
