package battery

import (
	"testing"
	"time"

	"repro/internal/units"
)

func drainTo(t *testing.T, s Store, soc float64) {
	t.Helper()
	for i := 0; s.SOC() > soc; i++ {
		if got := s.Discharge(s.MaxDischarge(), time.Second); got == 0 {
			return
		}
		if i > 1_000_000 {
			t.Fatal("drainTo did not converge")
		}
	}
}

func TestLVDDisconnectsAtCutoff(t *testing.T) {
	inner := MustKiBaM(KiBaMConfig{Capacity: 36000, MaxDischarge: 1e6, MaxCharge: 1e6})
	l := NewLVD(inner, 0.10, 0.30)
	drainTo(t, l, 0.10)
	if !l.Disconnected() {
		t.Fatal("LVD should have disconnected at cutoff")
	}
	if got := l.Discharge(100, time.Second); got != 0 {
		t.Fatalf("disconnected battery delivered %v", got)
	}
	if l.MaxDischarge() != 0 {
		t.Fatal("disconnected battery should advertise 0 discharge capability")
	}
}

func TestLVDReconnectHysteresis(t *testing.T) {
	inner := MustKiBaM(KiBaMConfig{Capacity: 36000, MaxDischarge: 1e6, MaxCharge: 1e6})
	l := NewLVD(inner, 0.10, 0.30)
	drainTo(t, l, 0.10)
	// Charge to just above cutoff but below reconnect: stays disconnected.
	for l.SOC() < 0.15 {
		l.Charge(1000, time.Second)
	}
	if !l.Disconnected() {
		t.Fatal("LVD reconnected below the reconnect threshold")
	}
	// Charge past the reconnect threshold: reconnects.
	for l.SOC() < 0.30 {
		l.Charge(1000, time.Second)
	}
	if l.Disconnected() {
		t.Fatal("LVD failed to reconnect above threshold")
	}
	if got := l.Discharge(100, time.Second); got != 100 {
		t.Fatalf("reconnected battery delivered %v, want 100", got)
	}
}

func TestLVDStartsDisconnectedWhenEmpty(t *testing.T) {
	inner := MustKiBaM(KiBaMConfig{Capacity: 36000, InitialSOC: 0.01})
	l := NewLVD(inner, 0.05, 0.20)
	if !l.Disconnected() {
		t.Fatal("LVD wrapping an empty battery should start disconnected")
	}
}

func TestLVDIdleDoesNotReconnect(t *testing.T) {
	inner := MustKiBaM(KiBaMConfig{Capacity: 36000, MaxDischarge: 1e6})
	l := NewLVD(inner, 0.10, 0.30)
	drainTo(t, l, 0.10)
	l.Idle(time.Hour)
	if !l.Disconnected() {
		t.Fatal("rest alone must not reconnect an LVD (total SOC unchanged)")
	}
}

func TestLVDParameterNormalization(t *testing.T) {
	inner := MustKiBaM(KiBaMConfig{Capacity: 36000})
	// Negative cutoff clamps to 0; reconnect below cutoff clamps up.
	l := NewLVD(inner, -1, -2)
	if l.cutoff != 0 || l.reconnect != 0 {
		t.Fatalf("normalization failed: cutoff=%v reconnect=%v", l.cutoff, l.reconnect)
	}
}

func TestLVDPassThroughs(t *testing.T) {
	inner := MustKiBaM(KiBaMConfig{Capacity: 36000, MaxDischarge: 777, MaxCharge: 55})
	l := NewLVD(inner, 0.05, 0.20)
	if l.Capacity() != inner.Capacity() {
		t.Error("Capacity pass-through wrong")
	}
	if l.MaxDischarge() != 777 {
		t.Error("MaxDischarge pass-through wrong")
	}
	if l.MaxCharge() != 55 {
		t.Error("MaxCharge pass-through wrong")
	}
	if l.Inner() != Store(inner) {
		t.Error("Inner should return the wrapped store")
	}
}

func TestRackCabinetPreset(t *testing.T) {
	const rackLoad = units.Watts(5210)
	cab := NewRackCabinet(rackLoad)
	// Must sustain full rack load for the advertised autonomy.
	const tick = 100 * time.Millisecond
	for elapsed := time.Duration(0); elapsed < RackCabinetAutonomy; elapsed += tick {
		if got := cab.Discharge(rackLoad, tick); got < rackLoad {
			t.Fatalf("cabinet failed at %v (delivered %v)", elapsed, got)
		}
	}
}

func TestTestbedUPSPreset(t *testing.T) {
	ups := NewTestbedUPS()
	const load = units.Watts(800.0 / 3)
	// Spot-check sustained delivery for the first minute of the rated 10.
	for i := 0; i < 60; i++ {
		if got := ups.Discharge(load, time.Second); got < load {
			t.Fatalf("testbed UPS failed at %ds (delivered %v)", i, got)
		}
	}
}

func TestMicroDEBPreset(t *testing.T) {
	// The paper's example: 0.35 Wh shaves 0.5 s of current sharing on a
	// 5 kW rack. Our μDEB must deliver ~2.5 kW for 0.5 s from 0.35 Wh.
	u := NewMicroDEB(units.WattHours(0.35).Joules(), 5000)
	got := u.Discharge(2500, 500*time.Millisecond)
	if got < 2500 {
		t.Fatalf("μDEB delivered %v, want 2.5 kW for the full half second", got)
	}
}
