package battery

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/units"
)

func TestSuperCapConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  SuperCapConfig
	}{
		{"zero capacity", SuperCapConfig{}},
		{"negative max power", SuperCapConfig{Capacity: 100, MaxPower: -1}},
		{"bad efficiency", SuperCapConfig{Capacity: 100, Efficiency: 1.5}},
		{"negative efficiency", SuperCapConfig{Capacity: 100, Efficiency: -0.5}},
		{"bad soc", SuperCapConfig{Capacity: 100, InitialSOC: 2}},
	}
	for _, c := range cases {
		if _, err := NewSuperCap(c.cfg); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestSuperCapDischargeDrains(t *testing.T) {
	sc := MustSuperCap(SuperCapConfig{Capacity: 1260}) // 0.35 Wh
	got := sc.Discharge(2520, 250*time.Millisecond)
	if got != 2520 {
		t.Fatalf("delivered %v, want 2520 W", got)
	}
	if soc := sc.SOC(); math.Abs(soc-0.5) > 1e-9 {
		t.Fatalf("SOC = %v, want 0.5", soc)
	}
}

func TestSuperCapCannotOverDeliver(t *testing.T) {
	sc := MustSuperCap(SuperCapConfig{Capacity: 100, MaxPower: 1e6})
	got := sc.Discharge(1e6, time.Second)
	if float64(got) > 100+1e-9 {
		t.Fatalf("delivered %v from a 100 J cap over 1 s", got)
	}
	if sc.SOC() < -1e-12 {
		t.Fatalf("SOC negative: %v", sc.SOC())
	}
}

func TestSuperCapPowerRating(t *testing.T) {
	sc := MustSuperCap(SuperCapConfig{Capacity: 1e6, MaxPower: 500})
	if got := sc.Discharge(10000, time.Second); got != 500 {
		t.Fatalf("delivered %v, want the 500 W rating", got)
	}
	// Drain it some, then charging is rate-limited too.
	if got := sc.Charge(10000, time.Second); got > 500 {
		t.Fatalf("accepted %v above the 500 W rating", got)
	}
}

func TestSuperCapChargeEfficiency(t *testing.T) {
	sc := MustSuperCap(SuperCapConfig{Capacity: 1000, MaxPower: 1e6, InitialSOC: 0.001})
	start := sc.SOC() * float64(sc.Capacity())
	accepted := sc.Charge(100, time.Second)
	stored := sc.SOC()*float64(sc.Capacity()) - start
	wantStored := float64(accepted) * 0.95
	if math.Abs(stored-wantStored) > 1e-9 {
		t.Fatalf("stored %v J from %v accepted, want %v", stored, accepted, wantStored)
	}
}

func TestSuperCapNeverOverfills(t *testing.T) {
	f := func(offerRaw uint16, steps uint8) bool {
		sc := MustSuperCap(SuperCapConfig{Capacity: 500, MaxPower: 1e6, InitialSOC: 0.5})
		for i := 0; i < int(steps); i++ {
			sc.Charge(units.Watts(offerRaw), 100*time.Millisecond)
		}
		return sc.SOC() <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSuperCapIdleIsLossless(t *testing.T) {
	sc := MustSuperCap(SuperCapConfig{Capacity: 1000, InitialSOC: 0.7})
	sc.Idle(24 * time.Hour)
	if math.Abs(sc.SOC()-0.7) > 1e-12 {
		t.Fatalf("idle changed SOC: %v", sc.SOC())
	}
}

func TestSuperCapZeroRequests(t *testing.T) {
	sc := MustSuperCap(SuperCapConfig{Capacity: 1000})
	if sc.Discharge(0, time.Second) != 0 || sc.Discharge(-1, time.Second) != 0 {
		t.Error("non-positive discharge should yield 0")
	}
	if sc.Charge(0, time.Second) != 0 || sc.Charge(100, 0) != 0 {
		t.Error("degenerate charge should accept 0")
	}
}

func TestSuperCapDefaultMaxPower(t *testing.T) {
	sc := MustSuperCap(SuperCapConfig{Capacity: 1260})
	// Default rating is capacity/0.1 s: caps dump energy in a blink.
	if sc.MaxDischarge() != 12600 {
		t.Fatalf("default MaxPower = %v, want 12.6 kW", sc.MaxDischarge())
	}
	if sc.MaxCharge() != sc.MaxDischarge() {
		t.Fatal("supercap charge and discharge ratings should match")
	}
}

func TestMustSuperCapPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustSuperCap with bad config should panic")
		}
	}()
	MustSuperCap(SuperCapConfig{})
}

func TestSuperCapStats(t *testing.T) {
	sc := MustSuperCap(SuperCapConfig{Capacity: 1000, MaxPower: 1e6, InitialSOC: 0.5})
	sc.Discharge(100, time.Second)
	sc.Charge(50, time.Second)
	st := sc.UsageStats()
	if st.EnergyOut != 100 || st.EnergyIn != 50 {
		t.Fatalf("stats = %+v", st)
	}
}
