package battery

import (
	"testing"

	"repro/internal/units"
)

func TestOnlineChargerUsesHeadroom(t *testing.T) {
	o := OnlineCharger{}
	if got := o.Plan(0.5, 300); got != 300 {
		t.Fatalf("Plan = %v, want all 300 W headroom", got)
	}
	if got := o.Plan(1.0, 300); got != 0 {
		t.Fatalf("full battery should not charge, got %v", got)
	}
	if got := o.Plan(0.5, 0); got != 0 {
		t.Fatalf("no headroom should plan 0, got %v", got)
	}
	if got := o.Plan(0.5, -50); got != 0 {
		t.Fatalf("negative headroom should plan 0, got %v", got)
	}
}

func TestOnlineChargerRateCap(t *testing.T) {
	o := OnlineCharger{Rate: 100}
	if got := o.Plan(0.5, 300); got != 100 {
		t.Fatalf("Plan = %v, want the 100 W rate", got)
	}
	if got := o.Plan(0.5, 60); got != 60 {
		t.Fatalf("Plan = %v, want headroom-limited 60", got)
	}
}

func TestOfflineChargerHysteresis(t *testing.T) {
	o := &OfflineCharger{Threshold: 0.3, Rate: 100}
	// Above threshold and never triggered: no charging.
	if got := o.Plan(0.8, units.Watts(500)); got != 0 {
		t.Fatalf("idle offline charger planned %v", got)
	}
	if o.Charging() {
		t.Fatal("should not be charging yet")
	}
	// Dips to threshold: starts charging.
	if got := o.Plan(0.3, 500); got != 100 {
		t.Fatalf("triggered charger planned %v, want 100", got)
	}
	if !o.Charging() {
		t.Fatal("should be charging after trigger")
	}
	// Mid-recharge it keeps going even though SOC is above threshold.
	if got := o.Plan(0.6, 500); got != 100 {
		t.Fatalf("mid-recharge planned %v, want 100", got)
	}
	// Reaching full stops the cycle.
	if got := o.Plan(1.0, 500); got != 0 {
		t.Fatalf("full battery planned %v", got)
	}
	if o.Charging() {
		t.Fatal("cycle should end at full")
	}
	// And it stays off above the threshold.
	if got := o.Plan(0.9, 500); got != 0 {
		t.Fatalf("post-cycle planned %v", got)
	}
}

func TestOfflineChargerHeadroomLimited(t *testing.T) {
	o := &OfflineCharger{Threshold: 0.5, Rate: 100}
	if got := o.Plan(0.2, 30); got != 30 {
		t.Fatalf("planned %v, want headroom-limited 30", got)
	}
	if got := o.Plan(0.2, 0); got != 0 {
		t.Fatalf("no headroom should plan 0, got %v", got)
	}
}

func TestOfflineChargerUnlimitedRate(t *testing.T) {
	o := &OfflineCharger{Threshold: 0.5}
	if got := o.Plan(0.2, 430); got != 430 {
		t.Fatalf("planned %v, want all headroom", got)
	}
}
