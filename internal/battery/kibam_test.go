package battery

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/units"
)

func newTestKiBaM(t *testing.T, cfg KiBaMConfig) *KiBaM {
	t.Helper()
	b, err := NewKiBaM(cfg)
	if err != nil {
		t.Fatalf("NewKiBaM: %v", err)
	}
	return b
}

func TestKiBaMConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  KiBaMConfig
	}{
		{"zero capacity", KiBaMConfig{}},
		{"negative capacity", KiBaMConfig{Capacity: -1}},
		{"c too big", KiBaMConfig{Capacity: 1000, C: 1.5}},
		{"c negative", KiBaMConfig{Capacity: 1000, C: -0.1}},
		{"k negative", KiBaMConfig{Capacity: 1000, K: -1}},
		{"soc out of range", KiBaMConfig{Capacity: 1000, InitialSOC: 1.5}},
		{"negative max discharge", KiBaMConfig{Capacity: 1000, MaxDischarge: -5}},
		{"negative max charge", KiBaMConfig{Capacity: 1000, MaxCharge: -5}},
	}
	for _, c := range cases {
		if _, err := NewKiBaM(c.cfg); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestKiBaMStartsFull(t *testing.T) {
	b := newTestKiBaM(t, KiBaMConfig{Capacity: 3600})
	if soc := b.SOC(); math.Abs(soc-1) > 1e-12 {
		t.Fatalf("initial SOC = %v, want 1", soc)
	}
	if av := b.AvailableSOC(); math.Abs(av-1) > 1e-12 {
		t.Fatalf("initial available SOC = %v, want 1", av)
	}
}

func TestKiBaMInitialSOC(t *testing.T) {
	b := newTestKiBaM(t, KiBaMConfig{Capacity: 3600, InitialSOC: 0.5})
	if soc := b.SOC(); math.Abs(soc-0.5) > 1e-12 {
		t.Fatalf("SOC = %v, want 0.5", soc)
	}
}

func TestKiBaMEnergyConservationOnDischarge(t *testing.T) {
	b := newTestKiBaM(t, KiBaMConfig{Capacity: 36000, MaxDischarge: 1000})
	start := b.SOC() * float64(b.Capacity())
	var delivered float64
	for i := 0; i < 100; i++ {
		got := b.Discharge(50, time.Second)
		delivered += float64(got) * 1
	}
	end := b.SOC() * float64(b.Capacity())
	if math.Abs((start-end)-delivered) > 1e-6*start {
		t.Fatalf("energy not conserved: stored dropped %v J, delivered %v J", start-end, delivered)
	}
}

func TestKiBaMNeverDeliversMoreThanRequested(t *testing.T) {
	f := func(reqRaw uint16, socRaw uint8) bool {
		req := units.Watts(reqRaw)
		soc := float64(socRaw%100+1) / 100
		b := MustKiBaM(KiBaMConfig{Capacity: 72000, InitialSOC: soc, MaxDischarge: 5000})
		got := b.Discharge(req, time.Second)
		return got >= 0 && got <= req
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKiBaMSOCMonotoneUnderDischarge(t *testing.T) {
	b := newTestKiBaM(t, KiBaMConfig{Capacity: 72000, MaxDischarge: 2000})
	prev := b.SOC()
	for i := 0; i < 500; i++ {
		b.Discharge(500, time.Second)
		soc := b.SOC()
		if soc > prev+1e-12 {
			t.Fatalf("SOC rose during discharge at step %d: %v -> %v", i, prev, soc)
		}
		prev = soc
	}
}

func TestKiBaMRespectsMaxDischargeRating(t *testing.T) {
	b := newTestKiBaM(t, KiBaMConfig{Capacity: 72000, MaxDischarge: 100})
	if got := b.Discharge(1000, time.Second); got > 100 {
		t.Fatalf("delivered %v above the 100 W rating", got)
	}
}

func TestKiBaMRateCapacityEffect(t *testing.T) {
	// At a high discharge rate the battery sustains the load for much less
	// time than nominal-capacity/power would suggest; at a low rate it gets
	// close to nominal. This is the signature KiBaM behaviour the attack
	// exploits.
	const cap_ = units.Joules(72000)
	sustain := func(p units.Watts, tick time.Duration) time.Duration {
		b := MustKiBaM(KiBaMConfig{Capacity: cap_, MaxDischarge: 1e6})
		for elapsed := time.Duration(0); elapsed < 48*time.Hour; elapsed += tick {
			if b.Discharge(p, tick) < p {
				return elapsed
			}
		}
		return 48 * time.Hour
	}
	// Low rate: nominal drain time of 20000 s, an order of magnitude longer
	// than the 1/k ≈ 2200 s well-coupling time constant, so the bound well
	// keeps up and nearly the whole nominal capacity is extracted.
	low := sustain(3.6, time.Second)
	lowFrac := 3.6 * low.Seconds() / float64(cap_)
	if lowFrac < 0.9 {
		t.Errorf("low-rate discharge extracted only %.0f%% of nominal capacity", lowFrac*100)
	}
	// High rate: empty in ~50 s nominal — should extract much less.
	high := sustain(1440, 100*time.Millisecond)
	highFrac := 1440 * high.Seconds() / float64(cap_)
	if highFrac > 0.95*lowFrac {
		t.Errorf("no rate-capacity effect: high-rate extracted %.0f%%, low-rate %.0f%%",
			highFrac*100, lowFrac*100)
	}
}

func TestKiBaMRecoveryEffect(t *testing.T) {
	b := newTestKiBaM(t, KiBaMConfig{Capacity: 72000, MaxDischarge: 1e6})
	// Drain hard until delivery falls short.
	for b.Discharge(1440, time.Second) >= 1440 {
	}
	drained := b.AvailableSOC()
	b.Idle(5 * time.Minute)
	rested := b.AvailableSOC()
	if rested <= drained {
		t.Fatalf("no recovery: available SOC %v after rest vs %v drained", rested, drained)
	}
	// Total SOC must not rise while idle.
	if b.SOC() > 1 {
		t.Fatal("idle created energy")
	}
}

func TestKiBaMIdlePreservesTotalCharge(t *testing.T) {
	b := newTestKiBaM(t, KiBaMConfig{Capacity: 72000, InitialSOC: 0.5})
	before := b.SOC()
	b.Idle(time.Hour)
	after := b.SOC()
	if math.Abs(before-after) > 1e-9 {
		t.Fatalf("idle changed total SOC: %v -> %v", before, after)
	}
}

func TestKiBaMChargeRefills(t *testing.T) {
	b := newTestKiBaM(t, KiBaMConfig{Capacity: 36000, InitialSOC: 0.3, MaxCharge: 500})
	start := b.SOC()
	var accepted float64
	for i := 0; i < 60; i++ {
		got := b.Charge(200, time.Second)
		accepted += float64(got)
	}
	if b.SOC() <= start {
		t.Fatal("charging did not raise SOC")
	}
	gained := (b.SOC() - start) * float64(b.Capacity())
	if math.Abs(gained-accepted) > 1e-6*accepted {
		t.Fatalf("charge energy mismatch: gained %v J, accepted %v J", gained, accepted)
	}
}

func TestKiBaMChargeNeverOverfills(t *testing.T) {
	b := newTestKiBaM(t, KiBaMConfig{Capacity: 3600, InitialSOC: 0.95, MaxCharge: 1e6})
	for i := 0; i < 1000; i++ {
		b.Charge(10000, time.Second)
	}
	if soc := b.SOC(); soc > 1+1e-9 {
		t.Fatalf("SOC exceeded 1: %v", soc)
	}
}

func TestKiBaMChargeRespectsRating(t *testing.T) {
	b := newTestKiBaM(t, KiBaMConfig{Capacity: 72000, InitialSOC: 0.1, MaxCharge: 50})
	if got := b.Charge(500, time.Second); got > 50 {
		t.Fatalf("accepted %v above the 50 W rating", got)
	}
}

func TestKiBaMZeroAndNegativeRequests(t *testing.T) {
	b := newTestKiBaM(t, KiBaMConfig{Capacity: 3600})
	if got := b.Discharge(0, time.Second); got != 0 {
		t.Error("Discharge(0) should deliver 0")
	}
	if got := b.Discharge(-5, time.Second); got != 0 {
		t.Error("Discharge(-5) should deliver 0")
	}
	if got := b.Charge(0, time.Second); got != 0 {
		t.Error("Charge(0) should accept 0")
	}
	if got := b.Discharge(100, 0); got != 0 {
		t.Error("zero-duration discharge should deliver 0")
	}
}

func TestKiBaMEmptyBatteryDeliversNothing(t *testing.T) {
	b := newTestKiBaM(t, KiBaMConfig{Capacity: 3600, MaxDischarge: 1e6})
	// Exhaust it completely.
	for i := 0; i < 10000; i++ {
		if b.Discharge(1000, time.Second) == 0 {
			break
		}
	}
	if got := b.Discharge(100, time.Second); got > 1 {
		t.Fatalf("near-empty battery delivered %v", got)
	}
	if b.SOC() < -1e-9 {
		t.Fatalf("SOC went negative: %v", b.SOC())
	}
}

func TestKiBaMUsageStats(t *testing.T) {
	b := newTestKiBaM(t, KiBaMConfig{Capacity: 72000, MaxDischarge: 1e6, MaxCharge: 1e6})
	b.Discharge(100, 10*time.Second)
	b.Charge(50, 10*time.Second)
	st := b.UsageStats()
	if st.EnergyOut != 1000 {
		t.Errorf("EnergyOut = %v, want 1000 J", st.EnergyOut)
	}
	if st.EnergyIn != 500 {
		t.Errorf("EnergyIn = %v, want 500 J", st.EnergyIn)
	}
}

func TestKiBaMDeepDischargeCounter(t *testing.T) {
	b := newTestKiBaM(t, KiBaMConfig{Capacity: 3600, MaxDischarge: 1e6, MaxCharge: 1e6})
	for b.SOC() > 0.1 {
		b.Discharge(500, time.Second)
	}
	if got := b.UsageStats().DeepDischarges; got != 1 {
		t.Fatalf("DeepDischarges = %d, want 1", got)
	}
	// Recharge above the threshold and dip again: counts a second event.
	for b.SOC() < 0.5 {
		b.Charge(1000, time.Second)
	}
	for b.SOC() > 0.1 {
		b.Discharge(500, time.Second)
	}
	if got := b.UsageStats().DeepDischarges; got != 2 {
		t.Fatalf("DeepDischarges = %d, want 2", got)
	}
}

func TestSizeForAutonomy(t *testing.T) {
	const load = units.Watts(5210)
	cap_ := SizeForAutonomy(load, 50*time.Second, 0, 0)
	if cap_ <= load.Energy(50*time.Second) {
		t.Fatalf("sized capacity %v should exceed the naive %v (rate-capacity effect)",
			cap_, load.Energy(50*time.Second))
	}
	// Verify the sized battery actually sustains the load for the autonomy.
	b := MustKiBaM(KiBaMConfig{Capacity: cap_, MaxDischarge: load * 10})
	const tick = 100 * time.Millisecond
	for elapsed := time.Duration(0); elapsed < 50*time.Second; elapsed += tick {
		if got := b.Discharge(load, tick); got < load {
			t.Fatalf("sized battery failed after %v (delivered %v)", elapsed, got)
		}
	}
}

func TestSizeForAutonomyDegenerate(t *testing.T) {
	if got := SizeForAutonomy(0, time.Minute, 0, 0); got != 0 {
		t.Errorf("zero load should size 0, got %v", got)
	}
	if got := SizeForAutonomy(100, 0, 0, 0); got != 0 {
		t.Errorf("zero autonomy should size 0, got %v", got)
	}
}

func TestMustKiBaMPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustKiBaM with bad config should panic")
		}
	}()
	MustKiBaM(KiBaMConfig{})
}

func TestKiBaMSelfDischarge(t *testing.T) {
	b := newTestKiBaM(t, KiBaMConfig{
		Capacity:              72000,
		SelfDischargePerMonth: 0.03,
	})
	// A month at rest loses ~3%.
	for day := 0; day < 30; day++ {
		b.Idle(24 * time.Hour)
	}
	if soc := b.SOC(); soc < 0.965 || soc > 0.975 {
		t.Fatalf("SOC after a month at rest = %v, want ~0.97", soc)
	}
	// Without the option, rest is lossless.
	ref := newTestKiBaM(t, KiBaMConfig{Capacity: 72000})
	ref.Idle(30 * 24 * time.Hour)
	if soc := ref.SOC(); soc < 1-1e-9 {
		t.Fatalf("leak-free battery lost charge at rest: %v", soc)
	}
}

func TestKiBaMSelfDischargeValidation(t *testing.T) {
	if _, err := NewKiBaM(KiBaMConfig{Capacity: 1000, SelfDischargePerMonth: 1.0}); err == nil {
		t.Error("100% monthly self-discharge should fail")
	}
	if _, err := NewKiBaM(KiBaMConfig{Capacity: 1000, SelfDischargePerMonth: -0.1}); err == nil {
		t.Error("negative self-discharge should fail")
	}
}
