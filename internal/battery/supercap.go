package battery

import (
	"fmt"
	"math"
	"time"

	"repro/internal/units"
)

// SuperCap models the super-capacitor bank used by the μDEB spike shaver:
// tiny energy capacity, enormous power capability, no kinetic limits and
// no cycle-aging concerns. Round-trip losses are modeled with a single
// efficiency factor applied on charge.
type SuperCap struct {
	capacity   units.Joules
	energy     float64 // joules stored
	maxPower   units.Watts
	efficiency float64

	statTracker
}

// SuperCapConfig parameterizes a super-capacitor bank.
type SuperCapConfig struct {
	// Capacity is the usable energy capacity.
	Capacity units.Joules
	// MaxPower is the maximum charge/discharge power. 0 selects
	// capacity/(0.1 s): caps are sized to dump their energy in a fraction
	// of a second.
	MaxPower units.Watts
	// Efficiency is the charge efficiency in (0, 1]; 0 selects 0.95.
	Efficiency float64
	// InitialSOC is the starting state of charge; 0 means full.
	InitialSOC float64
}

// NewSuperCap constructs a super-capacitor bank from cfg.
func NewSuperCap(cfg SuperCapConfig) (*SuperCap, error) {
	if cfg.Capacity <= 0 {
		return nil, fmt.Errorf("battery: supercap capacity must be positive, got %v", cfg.Capacity)
	}
	maxP := cfg.MaxPower
	if maxP == 0 {
		maxP = units.Watts(float64(cfg.Capacity) / 0.1)
	}
	if maxP <= 0 {
		return nil, fmt.Errorf("battery: supercap max power must be positive, got %v", maxP)
	}
	eff := cfg.Efficiency
	if eff == 0 {
		eff = 0.95
	}
	if eff <= 0 || eff > 1 {
		return nil, fmt.Errorf("battery: supercap efficiency must be in (0,1], got %v", eff)
	}
	soc := cfg.InitialSOC
	if soc == 0 {
		soc = 1
	}
	if soc < 0 || soc > 1 {
		return nil, fmt.Errorf("battery: supercap initial SOC must be in [0,1], got %v", soc)
	}
	sc := &SuperCap{
		capacity:   cfg.Capacity,
		energy:     float64(cfg.Capacity) * soc,
		maxPower:   maxP,
		efficiency: eff,
	}
	sc.wasAbove = soc >= deepDischargeSOC
	return sc, nil
}

// MustSuperCap is NewSuperCap that panics on configuration error.
func MustSuperCap(cfg SuperCapConfig) *SuperCap {
	sc, err := NewSuperCap(cfg)
	if err != nil {
		panic(err)
	}
	return sc
}

// Discharge implements Store.
func (s *SuperCap) Discharge(req units.Watts, dt time.Duration) units.Watts {
	if req <= 0 || dt <= 0 {
		return 0
	}
	p := math.Min(float64(req), float64(s.maxPower))
	p = math.Min(p, s.energy/dt.Seconds())
	if p <= 0 {
		return 0
	}
	s.energy -= p * dt.Seconds()
	if s.energy < 0 {
		s.energy = 0
	}
	got := units.Watts(p)
	s.recordOut(got, dt, s.SOC())
	return got
}

// Charge implements Store.
func (s *SuperCap) Charge(offered units.Watts, dt time.Duration) units.Watts {
	if offered <= 0 || dt <= 0 {
		return 0
	}
	p := math.Min(float64(offered), float64(s.maxPower))
	headroom := float64(s.capacity) - s.energy
	// Accepted power p stores p*efficiency; cap so we never overfill.
	p = math.Min(p, headroom/(s.efficiency*dt.Seconds()))
	if p <= 0 {
		return 0
	}
	s.energy += p * s.efficiency * dt.Seconds()
	if s.energy > float64(s.capacity) {
		s.energy = float64(s.capacity)
	}
	got := units.Watts(p)
	s.recordIn(got, dt, s.SOC())
	return got
}

// Deliverable implements Store: the lesser of the power rating and the
// stored energy spread over dt.
func (s *SuperCap) Deliverable(dt time.Duration) units.Watts {
	if dt <= 0 {
		return 0
	}
	p := math.Min(float64(s.maxPower), s.energy/dt.Seconds())
	if p < 0 {
		p = 0
	}
	return units.Watts(p)
}

// Idle implements Store. Super-capacitor self-discharge is negligible on
// simulation timescales, so Idle is a no-op.
func (s *SuperCap) Idle(time.Duration) {}

// AtRest implements Rester: Idle is already a no-op, so rest only needs
// the headroom exhausted — a Charge offer then computes a non-positive
// accepted power and returns without touching the stored energy.
func (s *SuperCap) AtRest(time.Duration) bool {
	return float64(s.capacity)-s.energy <= 0
}

// SOC implements Store.
func (s *SuperCap) SOC() float64 { return s.energy / float64(s.capacity) }

// Capacity implements Store.
func (s *SuperCap) Capacity() units.Joules { return s.capacity }

// MaxDischarge implements Store.
func (s *SuperCap) MaxDischarge() units.Watts { return s.maxPower }

// MaxCharge implements Store.
func (s *SuperCap) MaxCharge() units.Watts { return s.maxPower }

// UsageStats returns the accumulated usage counters.
func (s *SuperCap) UsageStats() Stats { return s.stats }
