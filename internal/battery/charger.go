package battery

import "repro/internal/units"

// ChargePolicy decides how much charge power to request for a battery
// given its state of charge and the power headroom left under the rack's
// budget. The paper's Figure 5 contrasts the two policies below: online
// charging keeps the fleet's SOC variation to 3–12%, while offline
// charging nearly doubles it.
type ChargePolicy interface {
	// Plan returns the charge power to request, at most headroom.
	Plan(soc float64, headroom units.Watts) units.Watts
}

// OnlineCharger opportunistically recharges whenever budget headroom is
// available and the battery is not full.
type OnlineCharger struct {
	// Rate is the maximum charge power to request; 0 means "all headroom".
	Rate units.Watts
}

// Plan implements ChargePolicy.
func (o OnlineCharger) Plan(soc float64, headroom units.Watts) units.Watts {
	if soc >= 1 || headroom <= 0 {
		return 0
	}
	if o.Rate > 0 {
		return units.Min(o.Rate, headroom)
	}
	return headroom
}

// OfflineCharger recharges only after SOC falls to a preset threshold,
// then charges at a fixed rate until full. The hysteresis state makes the
// policy per-battery; use one OfflineCharger per battery unit.
type OfflineCharger struct {
	// Threshold is the SOC at or below which charging starts.
	Threshold float64
	// Rate is the charge power requested while charging; 0 means "all
	// headroom".
	Rate units.Watts

	charging bool
}

// Plan implements ChargePolicy.
func (o *OfflineCharger) Plan(soc float64, headroom units.Watts) units.Watts {
	if soc <= o.Threshold {
		o.charging = true
	}
	if soc >= 1 {
		o.charging = false
	}
	if !o.charging || headroom <= 0 {
		return 0
	}
	if o.Rate > 0 {
		return units.Min(o.Rate, headroom)
	}
	return headroom
}

// Charging reports whether the policy is currently in its recharge phase.
func (o *OfflineCharger) Charging() bool { return o.charging }
