package battery

import (
	"sync"
	"time"

	"repro/internal/units"
)

// Process-wide SizeForAutonomy memo. Sizing a rack cabinet binary-searches
// 40 full 100 ms-tick drain simulations, and a sweep builds one cabinet
// per rack per run — thousands of identical searches over the handful of
// distinct (load, autonomy, c, k) tuples a cluster shape implies. The
// search is a pure function of those arguments, so each tuple is computed
// at most once per process and every later caller gets the identical
// result.
//
// Singleflight shape mirrors internal/experiments' background-trace
// cache: the map lookup is under a mutex, the computation under a
// per-entry sync.Once, so concurrent callers for the same tuple block
// only on that entry while different tuples size in parallel (sweep
// workers hit this during run setup).
type sizeKey struct {
	load     units.Watts
	autonomy time.Duration
	c, k     float64
}

type sizeEntry struct {
	once sync.Once
	cap_ units.Joules
}

var sizeCache struct {
	mu sync.Mutex
	m  map[sizeKey]*sizeEntry
}

// cachedSizeForAutonomy memoizes sizeForAutonomyUncached. Callers have
// already applied the c/k defaults, so equivalent argument tuples share
// one entry, and have screened out non-finite parameters, so every key
// is hashable and comparable.
func cachedSizeForAutonomy(load units.Watts, autonomy time.Duration, c, k float64) units.Joules {
	key := sizeKey{load: load, autonomy: autonomy, c: c, k: k}
	sizeCache.mu.Lock()
	if sizeCache.m == nil {
		sizeCache.m = make(map[sizeKey]*sizeEntry)
	}
	e := sizeCache.m[key]
	if e == nil {
		e = &sizeEntry{}
		sizeCache.m[key] = e
	}
	sizeCache.mu.Unlock()
	e.once.Do(func() { e.cap_ = sizeForAutonomyUncached(load, autonomy, c, k) })
	return e.cap_
}

// ResetSizeCache drops every memoized sizing result. Results are
// unaffected because the search is deterministic; long-lived processes
// sweeping many disjoint cluster shapes can call it to release memory,
// and tests use it to exercise cold paths.
func ResetSizeCache() {
	sizeCache.mu.Lock()
	sizeCache.m = nil
	sizeCache.mu.Unlock()
}
