package battery

import (
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/units"
)

// TestSizeForAutonomyMemoized pins the memo's correctness contract: the
// cached answer is the uncached answer, exactly, cold and warm, and
// defaulted parameters share an entry with their explicit spellings.
func TestSizeForAutonomyMemoized(t *testing.T) {
	ResetSizeCache()
	defer ResetSizeCache()

	load, autonomy := units.Watts(5000), 50*time.Second
	want := sizeForAutonomyUncached(load, autonomy, DefaultC, DefaultK)
	if got := SizeForAutonomy(load, autonomy, 0, 0); got != want {
		t.Fatalf("cold cached = %v, uncached %v", got, want)
	}
	if got := SizeForAutonomy(load, autonomy, 0, 0); got != want {
		t.Fatalf("warm cached = %v, uncached %v", got, want)
	}
	// Explicit defaults must hit the same entry as zero-selected ones:
	// keys are built after default substitution.
	if got := SizeForAutonomy(load, autonomy, DefaultC, DefaultK); got != want {
		t.Fatalf("explicit-default cached = %v, uncached %v", got, want)
	}
	sizeCache.mu.Lock()
	entries := len(sizeCache.m)
	sizeCache.mu.Unlock()
	if entries != 1 {
		t.Fatalf("cache holds %d entries after equivalent calls, want 1", entries)
	}

	// A different tuple is its own entry with its own answer.
	want2 := sizeForAutonomyUncached(load, 2*autonomy, DefaultC, DefaultK)
	if got := SizeForAutonomy(load, 2*autonomy, 0, 0); got != want2 {
		t.Fatalf("second tuple cached = %v, uncached %v", got, want2)
	}
	if want2 <= want {
		t.Fatalf("doubling autonomy did not grow the size: %v vs %v", want2, want)
	}
}

// TestSizeForAutonomyConcurrent hammers one tuple from many goroutines:
// singleflight must give every caller the identical result (the race
// detector covers the memory-safety half).
func TestSizeForAutonomyConcurrent(t *testing.T) {
	ResetSizeCache()
	defer ResetSizeCache()

	load, autonomy := units.Watts(2600), 50*time.Second
	want := sizeForAutonomyUncached(load, autonomy, DefaultC, DefaultK)
	var wg sync.WaitGroup
	got := make([]units.Joules, 16)
	for i := range got {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = SizeForAutonomy(load, autonomy, 0, 0)
		}(i)
	}
	wg.Wait()
	for i, g := range got {
		if g != want {
			t.Fatalf("goroutine %d got %v, want %v", i, g, want)
		}
	}
}

// TestSizeForAutonomyEdgeInputs covers the paths around the cache:
// non-positive requests return 0 without touching it, and non-finite
// parameters bypass it (NaN keys would never hit).
func TestSizeForAutonomyEdgeInputs(t *testing.T) {
	ResetSizeCache()
	defer ResetSizeCache()

	if got := SizeForAutonomy(0, 50*time.Second, 0, 0); got != 0 {
		t.Fatalf("zero load sized %v, want 0", got)
	}
	if got := SizeForAutonomy(-5, 50*time.Second, 0, 0); got != 0 {
		t.Fatalf("negative load sized %v, want 0", got)
	}
	if got := SizeForAutonomy(100, 0, 0, 0); got != 0 {
		t.Fatalf("zero autonomy sized %v, want 0", got)
	}
	sizeCache.mu.Lock()
	entries := len(sizeCache.m)
	sizeCache.mu.Unlock()
	if entries != 0 {
		t.Fatalf("degenerate inputs populated the cache with %d entries", entries)
	}

	// NaN load: the uncached path panics in MustKiBaM exactly like the
	// pre-memo code did; the cache must not swallow or alter that.
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("NaN load did not panic")
			}
		}()
		SizeForAutonomy(units.Watts(math.NaN()), 50*time.Second, 0, 0)
	}()
	sizeCache.mu.Lock()
	entries = len(sizeCache.m)
	sizeCache.mu.Unlock()
	if entries != 0 {
		t.Fatalf("non-finite inputs populated the cache with %d entries", entries)
	}
}
