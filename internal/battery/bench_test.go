package battery

import (
	"testing"
	"time"

	"repro/internal/units"
)

// Battery microbenchmarks for the fixed-timestep kernel layer. The
// constant-dt cases are the engine's steady state — the per-dt
// coefficient cache hits every op and the closed form runs without a
// single math.Exp — while the alternating-dt case prices a cache miss
// (two exponentials recomputed per step).

func benchKiBaM() *KiBaM {
	return MustKiBaM(KiBaMConfig{
		Capacity:              260640,
		SelfDischargePerMonth: 0.03,
	})
}

func BenchmarkKiBaMStep(b *testing.B) {
	bat := benchKiBaM()
	const dt = 100 * time.Millisecond
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Alternate discharge and charge so the wells never pin at a rail.
		if i%2 == 0 {
			bat.Discharge(500, dt)
		} else {
			bat.Charge(500, dt)
		}
	}
}

func BenchmarkKiBaMStepVaryDT(b *testing.B) {
	bat := benchKiBaM()
	dts := []time.Duration{100 * time.Millisecond, time.Second}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%2 == 0 {
			bat.Discharge(500, dts[i%2])
		} else {
			bat.Charge(500, dts[i%2])
		}
	}
}

func BenchmarkKiBaMDeliverable(b *testing.B) {
	bat := benchKiBaM()
	const dt = 100 * time.Millisecond
	var sink units.Watts
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink = bat.Deliverable(dt)
	}
	_ = sink
}

func BenchmarkSizeForAutonomyCold(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ResetSizeCache()
		SizeForAutonomy(2600, 50*time.Second, 0, 0)
	}
	ResetSizeCache()
}

func BenchmarkSizeForAutonomyWarm(b *testing.B) {
	ResetSizeCache()
	SizeForAutonomy(2600, 50*time.Second, 0, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SizeForAutonomy(2600, 50*time.Second, 0, 0)
	}
	ResetSizeCache()
}
