package battery

import (
	"math"
	"testing"
	"time"

	"repro/internal/units"
)

func newParallelUnderTest(t *testing.T, n int, capEach units.Joules) *Parallel {
	t.Helper()
	stores := make([]Store, n)
	for i := range stores {
		stores[i] = MustKiBaM(KiBaMConfig{
			Capacity:     capEach,
			MaxDischarge: units.Watts(float64(capEach) / 50),
			MaxCharge:    units.Watts(float64(capEach) / 900),
		})
	}
	p, err := NewParallel(stores...)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestParallelValidation(t *testing.T) {
	if _, err := NewParallel(); err == nil {
		t.Error("empty bank should fail")
	}
	if _, err := NewParallel(nil); err == nil {
		t.Error("nil unit should fail")
	}
}

func TestParallelAggregates(t *testing.T) {
	p := newParallelUnderTest(t, 4, 10000)
	if p.Capacity() != 40000 {
		t.Fatalf("Capacity = %v", p.Capacity())
	}
	if p.Units() != 4 {
		t.Fatalf("Units = %d", p.Units())
	}
	if p.MaxDischarge() != 800 {
		t.Fatalf("MaxDischarge = %v", p.MaxDischarge())
	}
	if p.SOC() != 1 {
		t.Fatalf("fresh SOC = %v", p.SOC())
	}
}

func TestParallelDischargeSplitsEvenly(t *testing.T) {
	p := newParallelUnderTest(t, 4, 10000)
	got := p.Discharge(400, time.Second)
	if math.Abs(float64(got-400)) > 1e-6 {
		t.Fatalf("delivered %v, want 400", got)
	}
	// Identical units end at identical SOC.
	ref := p.Unit(0).SOC()
	for i := 1; i < 4; i++ {
		if math.Abs(p.Unit(i).SOC()-ref) > 1e-9 {
			t.Fatalf("uneven split: unit %d at %v vs %v", i, p.Unit(i).SOC(), ref)
		}
	}
}

func TestParallelHealthyUnitsCoverWeakOnes(t *testing.T) {
	weak := MustKiBaM(KiBaMConfig{Capacity: 10000, InitialSOC: 0.05, MaxDischarge: 200})
	strong := MustKiBaM(KiBaMConfig{Capacity: 10000, MaxDischarge: 200})
	p, err := NewParallel(weak, strong)
	if err != nil {
		t.Fatal(err)
	}
	// Over a sustained window the weak unit's available charge collapses
	// and the strong one carries the difference.
	for i := 0; i < 30; i++ {
		if got := p.Discharge(150, time.Second); got < 149 {
			t.Fatalf("bank delivered %v of 150 at second %d with a strong unit available", got, i)
		}
	}
	if strong.UsageStats().EnergyOut <= weak.UsageStats().EnergyOut {
		t.Fatalf("strong unit (%v) should carry more than the weak one (%v)",
			strong.UsageStats().EnergyOut, weak.UsageStats().EnergyOut)
	}
}

func TestParallelChargePrefersEmptyUnits(t *testing.T) {
	empty := MustKiBaM(KiBaMConfig{Capacity: 10000, InitialSOC: 0.2, MaxCharge: 500})
	full := MustKiBaM(KiBaMConfig{Capacity: 10000, InitialSOC: 0.9, MaxCharge: 500})
	p, err := NewParallel(empty, full)
	if err != nil {
		t.Fatal(err)
	}
	p.Charge(100, time.Minute)
	if empty.UsageStats().EnergyIn <= full.UsageStats().EnergyIn {
		t.Fatal("emptier unit should charge faster")
	}
}

func TestParallelNeverOverDelivers(t *testing.T) {
	p := newParallelUnderTest(t, 3, 3000)
	var delivered float64
	for i := 0; i < 10000; i++ {
		delivered += float64(p.Discharge(10000, time.Second))
		if p.Deliverable(time.Second) == 0 {
			break
		}
	}
	if delivered > 9000 {
		t.Fatalf("bank delivered %v J from 9000 J nominal", delivered)
	}
}

func TestParallelDegenerateRequests(t *testing.T) {
	p := newParallelUnderTest(t, 2, 1000)
	if p.Discharge(0, time.Second) != 0 || p.Discharge(-1, time.Second) != 0 {
		t.Error("non-positive discharge should deliver 0")
	}
	if p.Charge(0, time.Second) != 0 || p.Charge(10, 0) != 0 {
		t.Error("degenerate charge should accept 0")
	}
	p.Idle(time.Minute)
}

func TestParallelFullBankRejectsCharge(t *testing.T) {
	p := newParallelUnderTest(t, 2, 1000)
	if got := p.Charge(100, time.Second); got > 0 {
		t.Fatalf("full bank accepted %v", got)
	}
}

func TestPerNodeBank(t *testing.T) {
	bank, err := NewPerNodeBank(10, 521)
	if err != nil {
		t.Fatal(err)
	}
	if bank.Units() != 10 {
		t.Fatalf("units = %d", bank.Units())
	}
	// The bank must sustain the full rack load for the autonomy, like the
	// monolithic cabinet.
	const rackLoad = units.Watts(5210)
	const tick = 100 * time.Millisecond
	for elapsed := time.Duration(0); elapsed < RackCabinetAutonomy; elapsed += tick {
		if got := bank.Discharge(rackLoad, tick); got < rackLoad*0.999 {
			t.Fatalf("per-node bank failed at %v (delivered %v)", elapsed, got)
		}
	}
	if _, err := NewPerNodeBank(0, 521); err == nil {
		t.Error("zero servers should fail")
	}
}

// Parallel satisfies Store.
var _ Store = (*Parallel)(nil)
