// Package battery models the energy-storage devices of a battery-backed
// data center: lead-acid battery units following the KiBaM kinetic battery
// model, super-capacitor banks used by the μDEB spike shaver, low-voltage
// disconnect (LVD) protection, and the online/offline charge-control
// policies the paper contrasts in Figure 5.
//
// All devices expose the Store interface. Power is used in place of
// current throughout: the DC bus voltage is treated as constant, so the
// two differ only by a constant factor and energy bookkeeping stays exact.
package battery

import (
	"time"

	"repro/internal/units"
)

// Store is an energy storage device. Implementations are not safe for
// concurrent use: each store belongs to exactly one simulation run and is
// stepped only by that run's goroutine. The parallel sweep runner
// (internal/runner) keeps this sound by constructing every store inside
// the job that uses it — stores are never shared across concurrent runs.
type Store interface {
	// Discharge asks the store to deliver req for dt and returns the power
	// it actually sustained over the step (0 <= returned <= req). The
	// store's internal state advances by dt.
	Discharge(req units.Watts, dt time.Duration) units.Watts

	// Charge offers the store power for dt and returns the power it
	// actually accepted (0 <= returned <= offered). The store's internal
	// state advances by dt.
	Charge(offered units.Watts, dt time.Duration) units.Watts

	// Idle advances internal state by dt with no external current. For a
	// KiBaM battery this lets bound charge migrate to the available well
	// (the recovery effect).
	Idle(dt time.Duration)

	// SOC returns the total state of charge in [0, 1].
	SOC() float64

	// Capacity returns the nominal energy capacity.
	Capacity() units.Joules

	// MaxDischarge returns the rated maximum discharge power.
	MaxDischarge() units.Watts

	// Deliverable returns the discharge power the store could actually
	// sustain for the next dt given its current state — the rated limit
	// reduced by kinetic and charge constraints (0 when disconnected or
	// empty). It does not advance state.
	Deliverable(dt time.Duration) units.Watts

	// MaxCharge returns the rated maximum charge power.
	MaxCharge() units.Watts
}

// Rester is the optional quiescence probe a store may implement for the
// simulator's event-driven fast path. AtRest(dt) reports that one tick
// of dt would leave the store's observable and internal state
// bit-identical under any of the engine's no-op drives — Idle, a Charge
// offer (which must find no headroom to accept), or a non-positive
// Discharge request — so an arbitrary run of such ticks can be elided
// wholesale. AtRest must not advance state; a store that cannot prove
// the fixed point simply returns false and the engine falls back to
// per-tick stepping.
type Rester interface {
	AtRest(dt time.Duration) bool
}

// Stats accumulates usage counters used by the aging and cost analyses.
type Stats struct {
	// EnergyOut is the cumulative energy discharged.
	EnergyOut units.Joules
	// EnergyIn is the cumulative energy charged.
	EnergyIn units.Joules
	// DeepDischarges counts transitions below 20% SOC, a proxy for
	// lead-acid aging stress.
	DeepDischarges int
}

// statTracker implements the bookkeeping shared by the concrete stores.
type statTracker struct {
	stats    Stats
	wasAbove bool // above the deep-discharge threshold on the last sample
}

const deepDischargeSOC = 0.20

func (t *statTracker) recordOut(p units.Watts, dt time.Duration, soc float64) {
	t.stats.EnergyOut += p.Energy(dt)
	t.sampleSOC(soc)
}

func (t *statTracker) recordIn(p units.Watts, dt time.Duration, soc float64) {
	t.stats.EnergyIn += p.Energy(dt)
	t.sampleSOC(soc)
}

func (t *statTracker) sampleSOC(soc float64) {
	above := soc >= deepDischargeSOC
	if t.wasAbove && !above {
		t.stats.DeepDischarges++
	}
	t.wasAbove = above
}
