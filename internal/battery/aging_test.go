package battery

import (
	"math"
	"testing"
	"time"
)

func newAgingUnderTest(t *testing.T, cfg AgingConfig) *Aging {
	t.Helper()
	inner := MustKiBaM(KiBaMConfig{Capacity: 72000, MaxDischarge: 1e6, MaxCharge: 1e6})
	a, err := NewAging(inner, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestAgingValidation(t *testing.T) {
	if _, err := NewAging(nil, AgingConfig{}); err == nil {
		t.Error("nil inner should fail")
	}
	inner := MustKiBaM(KiBaMConfig{Capacity: 1000})
	if _, err := NewAging(inner, AgingConfig{CycleLife: 0.5}); err == nil {
		t.Error("cycle life < 1 should fail")
	}
	if _, err := NewAging(inner, AgingConfig{RatedDoD: 1.5}); err == nil {
		t.Error("DoD > 1 should fail")
	}
}

func TestAgingFreshBattery(t *testing.T) {
	a := newAgingUnderTest(t, AgingConfig{})
	if a.WearFraction() != 0 {
		t.Fatalf("fresh wear = %v", a.WearFraction())
	}
	if a.HealthFactor() != 1 {
		t.Fatalf("fresh health = %v", a.HealthFactor())
	}
	if a.Capacity() != 72000 {
		t.Fatalf("fresh capacity = %v", a.Capacity())
	}
}

func TestAgingAccumulatesWithCycles(t *testing.T) {
	a := newAgingUnderTest(t, AgingConfig{CycleLife: 100, RatedDoD: 0.5})
	// One shallow half-cycle: discharge ~20% of capacity, recharge.
	for a.SOC() > 0.8 {
		a.Discharge(1000, time.Second)
	}
	w1 := a.WearFraction()
	if w1 <= 0 {
		t.Fatal("discharge accrued no wear")
	}
	for a.SOC() < 0.99 {
		a.Charge(1000, time.Second)
	}
	// Charging accrues no additional wear in this model.
	if a.WearFraction() != w1 {
		t.Fatal("charging should not add wear")
	}
	if got := a.EquivalentFullCycles(); got <= 0 {
		t.Fatalf("equivalent cycles = %v", got)
	}
}

func TestAgingDeepDischargeStress(t *testing.T) {
	shallow := newAgingUnderTest(t, AgingConfig{CycleLife: 100, RatedDoD: 0.5})
	deep := newAgingUnderTest(t, AgingConfig{CycleLife: 100, RatedDoD: 0.5})
	// Equal energy throughput, different depth: shallow stays inside the
	// rated 50% DoD band, deep spends much of its time below it where the
	// stress factor exceeds 1.
	// Shallow: 7 cycles of 100%→90%.
	for i := 0; i < 7; i++ {
		for shallow.SOC() > 0.9 {
			shallow.Discharge(500, time.Second)
		}
		for shallow.SOC() < 0.999 {
			shallow.Charge(2000, time.Second)
		}
	}
	// Deep: one excursion 100%→30% (same total energy out).
	for deep.SOC() > 0.3 {
		deep.Discharge(500, time.Second)
	}
	if deep.WearFraction() <= shallow.WearFraction() {
		t.Fatalf("deep discharge (%v) should wear at least as much as shallow (%v)",
			deep.WearFraction(), shallow.WearFraction())
	}
}

func TestAgingCapacityFade(t *testing.T) {
	a := newAgingUnderTest(t, AgingConfig{CycleLife: 2, RatedDoD: 1}) // tiny life
	// Burn through most of the lifetime throughput.
	for cycle := 0; cycle < 2; cycle++ {
		for a.SOC() > 0.05 {
			if a.Discharge(2000, time.Second) == 0 {
				break
			}
		}
		for a.SOC() < 0.95 {
			a.Charge(2000, time.Second)
		}
	}
	if a.HealthFactor() > 0.95 {
		t.Fatalf("health barely moved after full lifetime: %v", a.HealthFactor())
	}
	if a.HealthFactor() < 0.8-1e-9 {
		t.Fatalf("health fell below the 0.8 end-of-life floor: %v", a.HealthFactor())
	}
	if a.Capacity() >= 72000 {
		t.Fatal("capacity did not fade")
	}
	// Deliverable is derated too.
	fresh := newAgingUnderTest(t, AgingConfig{})
	if a.Deliverable(time.Second) >= fresh.Deliverable(time.Second) {
		t.Fatal("worn battery should deliver less")
	}
}

func TestAgingWearBounded(t *testing.T) {
	a := newAgingUnderTest(t, AgingConfig{CycleLife: 1, RatedDoD: 0.2})
	for i := 0; i < 50; i++ {
		for a.SOC() > 0.05 {
			if a.Discharge(5000, time.Second) == 0 {
				break
			}
		}
		for a.SOC() < 0.95 {
			a.Charge(5000, time.Second)
		}
	}
	if w := a.WearFraction(); w != 1 {
		t.Fatalf("wear should clamp at 1, got %v", w)
	}
	if h := a.HealthFactor(); math.Abs(h-0.8) > 1e-9 {
		t.Fatalf("end-of-life health = %v, want 0.8", h)
	}
}

func TestAgingPassThroughs(t *testing.T) {
	a := newAgingUnderTest(t, AgingConfig{})
	if a.MaxDischarge() != a.Inner().MaxDischarge() {
		t.Error("MaxDischarge pass-through wrong")
	}
	if a.MaxCharge() != a.Inner().MaxCharge() {
		t.Error("MaxCharge pass-through wrong")
	}
	a.Idle(time.Minute)
	if a.SOC() > 1 {
		t.Error("idle corrupted SOC")
	}
}

// Aging satisfies Store.
var _ Store = (*Aging)(nil)
