package battery

import (
	"fmt"
	"time"

	"repro/internal/units"
)

// Parallel composes several stores into one bank discharged and charged
// side by side — the per-node battery deployment (Figure 3 option ❹),
// where a rack's backup is ten small per-server units instead of one
// cabinet. Requests are split proportionally to each unit's current
// capability, so healthy units pick up slack for weak ones until the
// weak units' LVDs isolate them.
type Parallel struct {
	units []Store
}

// NewParallel builds a parallel bank. At least one unit is required.
func NewParallel(stores ...Store) (*Parallel, error) {
	if len(stores) == 0 {
		return nil, fmt.Errorf("battery: parallel bank needs at least one unit")
	}
	for i, s := range stores {
		if s == nil {
			return nil, fmt.Errorf("battery: parallel unit %d is nil", i)
		}
	}
	return &Parallel{units: stores}, nil
}

// Units reports the number of composed units.
func (p *Parallel) Units() int { return len(p.units) }

// Unit exposes one composed unit.
func (p *Parallel) Unit(i int) Store { return p.units[i] }

// Discharge implements Store: the request splits across units in
// proportion to what each can deliver this tick.
func (p *Parallel) Discharge(req units.Watts, dt time.Duration) units.Watts {
	if req <= 0 || dt <= 0 {
		p.Idle(dt)
		return 0
	}
	caps := make([]units.Watts, len(p.units))
	var total units.Watts
	for i, u := range p.units {
		caps[i] = u.Deliverable(dt)
		total += caps[i]
	}
	if total <= 0 {
		p.Idle(dt)
		return 0
	}
	want := units.Min(req, total)
	var got units.Watts
	for i, u := range p.units {
		share := units.Watts(float64(want) * float64(caps[i]) / float64(total))
		if share <= 0 {
			u.Idle(dt)
			continue
		}
		got += u.Discharge(share, dt)
	}
	return got
}

// Charge implements Store: the offer splits across units in proportion to
// their remaining headroom (emptier units charge faster).
func (p *Parallel) Charge(offered units.Watts, dt time.Duration) units.Watts {
	if offered <= 0 || dt <= 0 {
		p.Idle(dt)
		return 0
	}
	heads := make([]float64, len(p.units))
	total := 0.0
	for i, u := range p.units {
		heads[i] = (1 - u.SOC()) * float64(u.Capacity())
		total += heads[i]
	}
	if total <= 0 {
		p.Idle(dt)
		return 0
	}
	var got units.Watts
	for i, u := range p.units {
		share := units.Watts(float64(offered) * heads[i] / total)
		if share <= 0 {
			u.Idle(dt)
			continue
		}
		got += u.Charge(share, dt)
	}
	return got
}

// Idle implements Store.
func (p *Parallel) Idle(dt time.Duration) {
	for _, u := range p.units {
		u.Idle(dt)
	}
}

// SOC implements Store: the capacity-weighted mean of the units.
func (p *Parallel) SOC() float64 {
	var stored, capTotal float64
	for _, u := range p.units {
		stored += u.SOC() * float64(u.Capacity())
		capTotal += float64(u.Capacity())
	}
	if capTotal == 0 {
		return 0
	}
	return stored / capTotal
}

// Capacity implements Store.
func (p *Parallel) Capacity() units.Joules {
	var total units.Joules
	for _, u := range p.units {
		total += u.Capacity()
	}
	return total
}

// MaxDischarge implements Store.
func (p *Parallel) MaxDischarge() units.Watts {
	var total units.Watts
	for _, u := range p.units {
		total += u.MaxDischarge()
	}
	return total
}

// MaxCharge implements Store.
func (p *Parallel) MaxCharge() units.Watts {
	var total units.Watts
	for _, u := range p.units {
		total += u.MaxCharge()
	}
	return total
}

// Deliverable implements Store.
func (p *Parallel) Deliverable(dt time.Duration) units.Watts {
	var total units.Watts
	for _, u := range p.units {
		total += u.Deliverable(dt)
	}
	return total
}

// NewPerNodeBank builds the per-node deployment for one rack: one small
// LVD-protected battery per server, each sized to carry its server for
// the rack autonomy, composed in parallel.
func NewPerNodeBank(servers int, serverNameplate units.Watts) (*Parallel, error) {
	if servers <= 0 {
		return nil, fmt.Errorf("battery: per-node bank needs servers, got %d", servers)
	}
	stores := make([]Store, servers)
	for i := range stores {
		cap_ := SizeForAutonomy(serverNameplate, RackCabinetAutonomy, 0, 0)
		b := MustKiBaM(KiBaMConfig{
			Capacity:     cap_,
			MaxDischarge: serverNameplate * 2,
			MaxCharge:    units.Watts(float64(cap_) / 900),
		})
		stores[i] = NewLVD(b, 0.05, 0.20)
	}
	return NewParallel(stores...)
}
