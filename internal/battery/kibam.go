package battery

import (
	"fmt"
	"math"
	"time"

	"repro/internal/fixedstep"
	"repro/internal/units"
)

// KiBaM is the kinetic battery model (Manwell & McGowan) the paper uses
// for charge/discharge accounting. The charge is split across two wells:
// an available well (fraction c of capacity) that supplies the load
// directly, and a bound well (fraction 1−c) that feeds the available well
// at a rate governed by the constant k. The model reproduces the two
// lead-acid effects that matter for power-attack analysis:
//
//   - the rate-capacity effect: sustained high-rate discharge exhausts the
//     available well long before the nominal capacity is spent, and
//   - the recovery effect: a rested battery regains deliverable charge as
//     bound charge migrates back.
//
// State is kept in joules; power plays the role of current (constant bus
// voltage).
type KiBaM struct {
	capacity units.Joules // total nominal capacity
	c        float64      // available-well fraction, in (0, 1)
	k        float64      // well-coupling rate constant, 1/s

	y1, y2 float64 // available / bound charge, joules
	leak   float64 // self-discharge rate, 1/s

	maxDischarge units.Watts
	maxCharge    units.Watts

	// Per-dt closed-form coefficients (fixed-timestep kernel layer): the
	// engine steps a battery with one constant tick, so the exp-derived
	// factors are computed once and reused bit-identically until dt
	// changes. k and leak are immutable after construction, so dt alone
	// keys the slot.
	coefKey fixedstep.Key
	coef    kibamCoef

	statTracker
}

// kibamCoef holds the constant-dt factors of the Manwell–McGowan closed
// form. Each field stores exactly the value the direct expression
// produces, so substituting them into the formulas is bit-identical to
// recomputing (pinned by TestKiBaMCoefBitIdentity).
type kibamCoef struct {
	t     float64 // dt in seconds
	ekt   float64 // exp(-k·t)
	omekt float64 // 1 - ekt
	ktm1e float64 // k·t - 1 + ekt
	decay float64 // exp(-leak·t); 1 when the battery has no leak
}

// coefFor returns the closed-form coefficients for dt, recomputing only
// when dt differs from the cached step.
func (b *KiBaM) coefFor(dt time.Duration) *kibamCoef {
	if !b.coefKey.Hit(dt) {
		t := dt.Seconds()
		ekt := math.Exp(-b.k * t)
		b.coef = kibamCoef{
			t:     t,
			ekt:   ekt,
			omekt: 1 - ekt,
			ktm1e: b.k*t - 1 + ekt,
			decay: 1,
		}
		if b.leak > 0 {
			b.coef.decay = math.Exp(-b.leak * t)
		}
	}
	return &b.coef
}

// KiBaMConfig parameterizes a KiBaM battery.
type KiBaMConfig struct {
	// Capacity is the nominal energy capacity.
	Capacity units.Joules
	// C is the available-well fraction. Lead-acid batteries are typically
	// in the 0.2–0.7 range; 0 selects the default 0.62.
	C float64
	// K is the well-coupling rate constant in 1/s. 0 selects the default
	// 4.5e-4 (≈1.6/hour), a common lead-acid fit.
	K float64
	// MaxDischarge is the rated maximum discharge power. 0 selects
	// capacity/(300 s): the "85 W for 5 minutes from a 2 Ah cell" rating
	// cited in the paper scaled to this capacity.
	MaxDischarge units.Watts
	// MaxCharge is the rated maximum charge power. 0 selects a C/5-hour
	// charge rate.
	MaxCharge units.Watts
	// InitialSOC is the starting state of charge; 0 means full (1.0).
	InitialSOC float64
	// SelfDischargePerMonth is the fraction of stored charge lost per
	// 30 days at rest (lead-acid loses ~3%/month). 0 disables the leak.
	SelfDischargePerMonth float64
}

// Default KiBaM parameters (lead-acid fits from the KiBaM literature).
const (
	DefaultC = 0.62
	DefaultK = 4.5e-4 // 1/s
)

// NewKiBaM constructs a battery from cfg, applying documented defaults.
// Range checks are written in accept-range (negated) form so NaN and ±Inf
// fields are rejected instead of slipping past reject-range comparisons.
func NewKiBaM(cfg KiBaMConfig) (*KiBaM, error) {
	if !(cfg.Capacity > 0) || math.IsInf(float64(cfg.Capacity), 0) {
		return nil, fmt.Errorf("battery: capacity must be positive and finite, got %v", cfg.Capacity)
	}
	c := cfg.C
	if c == 0 {
		c = DefaultC
	}
	if !(c > 0 && c < 1) {
		return nil, fmt.Errorf("battery: well fraction c must be in (0,1), got %v", c)
	}
	k := cfg.K
	if k == 0 {
		k = DefaultK
	}
	if !(k > 0) || math.IsInf(k, 0) {
		return nil, fmt.Errorf("battery: rate constant k must be positive and finite, got %v", k)
	}
	maxD := cfg.MaxDischarge
	if maxD == 0 {
		maxD = units.Watts(float64(cfg.Capacity) / 300)
	}
	if !(maxD > 0) || math.IsInf(float64(maxD), 0) {
		return nil, fmt.Errorf("battery: max discharge must be positive and finite, got %v", maxD)
	}
	maxC := cfg.MaxCharge
	if maxC == 0 {
		maxC = units.Watts(float64(cfg.Capacity) / (5 * 3600))
	}
	if !(maxC > 0) || math.IsInf(float64(maxC), 0) {
		return nil, fmt.Errorf("battery: max charge must be positive and finite, got %v", maxC)
	}
	soc := cfg.InitialSOC
	if soc == 0 {
		soc = 1
	}
	if !(soc >= 0 && soc <= 1) {
		return nil, fmt.Errorf("battery: initial SOC must be in [0,1], got %v", soc)
	}
	if !(cfg.SelfDischargePerMonth >= 0 && cfg.SelfDischargePerMonth < 1) {
		return nil, fmt.Errorf("battery: self-discharge %v out of [0,1)", cfg.SelfDischargePerMonth)
	}
	leak := 0.0
	if cfg.SelfDischargePerMonth > 0 {
		// Convert the monthly fraction to a continuous rate (1/s).
		leak = -math.Log(1-cfg.SelfDischargePerMonth) / (30 * 24 * 3600)
	}
	b := &KiBaM{
		capacity:     cfg.Capacity,
		c:            c,
		k:            k,
		maxDischarge: maxD,
		maxCharge:    maxC,
		leak:         leak,
	}
	b.y1 = c * float64(cfg.Capacity) * soc
	b.y2 = (1 - c) * float64(cfg.Capacity) * soc
	b.wasAbove = soc >= deepDischargeSOC
	return b, nil
}

// MustKiBaM is NewKiBaM that panics on configuration error; for use in
// presets and tests where the config is a literal.
func MustKiBaM(cfg KiBaMConfig) *KiBaM {
	b, err := NewKiBaM(cfg)
	if err != nil {
		panic(err)
	}
	return b
}

// stepValues returns the well levels one closed-form step of constant
// external power p (positive = discharge, negative = charge) would leave,
// without mutating the battery. step commits them and AtRest compares
// them, so both paths share one formula and cannot diverge.
func (b *KiBaM) stepValues(p float64, dt time.Duration) (float64, float64) {
	co := b.coefFor(dt)
	k := b.k
	y0 := b.y1 + b.y2
	c := b.c
	// Manwell–McGowan closed form, with the per-dt factors (co.ekt =
	// exp(-k·t), co.omekt = 1-ekt, co.ktm1e = k·t-1+ekt) cached. The
	// expression groups exactly as the direct formula did, so the result
	// is bit-identical.
	y1 := b.y1*co.ekt + (y0*k*c-p)*co.omekt/k - p*c*co.ktm1e/k
	y2 := b.y2*co.ekt + y0*(1-c)*co.omekt - p*(1-c)*co.ktm1e/k
	// Self-discharge leaks both wells.
	if b.leak > 0 {
		y1 *= co.decay
		y2 *= co.decay
	}
	// Clamp tiny numerical excursions.
	y1 = math.Max(0, math.Min(y1, c*float64(b.capacity)))
	y2 = math.Max(0, math.Min(y2, (1-c)*float64(b.capacity)))
	return y1, y2
}

// step advances the wells by dt under constant external power p
// (positive = discharge, negative = charge) using the closed-form KiBaM
// solution for constant current.
func (b *KiBaM) step(p float64, dt time.Duration) {
	if dt <= 0 {
		return
	}
	b.y1, b.y2 = b.stepValues(p, dt)
}

// AtRest implements Rester: a trial idle step of dt must leave both
// wells bit-identical (the closed form has reached its floating-point
// fixed point, which a full battery does because the clamp pins y1 and
// y2 at their well capacities) and the charge headroom must be
// exhausted, so a Charge request degrades to Idle. When both hold,
// Idle, Charge and non-positive Discharge all leave the battery's state
// untouched for any number of consecutive ticks.
func (b *KiBaM) AtRest(dt time.Duration) bool {
	if dt <= 0 {
		return true
	}
	y1, y2 := b.stepValues(0, dt)
	if y1 != b.y1 || y2 != b.y2 {
		return false
	}
	return float64(b.capacity)-(b.y1+b.y2) <= 0
}

// maxSustainable returns the largest constant discharge power the battery
// can sustain for the whole step without the available well going
// negative, ignoring the power rating.
func (b *KiBaM) maxSustainable(dt time.Duration) float64 {
	if dt <= 0 {
		return 0
	}
	co := b.coefFor(dt)
	k := b.k
	y0 := b.y1 + b.y2
	c := b.c
	// y1(t) = A − p·B with A, B >= 0; p_max solves y1(t) = 0.
	a := b.y1*co.ekt + y0*k*c*co.omekt/k
	bb := co.omekt/k + c*co.ktm1e/k
	if bb <= 0 {
		return 0
	}
	return a / bb
}

// Discharge implements Store. A NaN request is treated as zero (the
// negated comparison sends it down the idle path).
func (b *KiBaM) Discharge(req units.Watts, dt time.Duration) units.Watts {
	if !(req > 0) || dt <= 0 {
		b.Idle(dt)
		return 0
	}
	p := math.Min(float64(req), float64(b.maxDischarge))
	p = math.Min(p, b.maxSustainable(dt))
	if p <= 0 {
		b.Idle(dt)
		return 0
	}
	b.step(p, dt)
	got := units.Watts(p)
	b.recordOut(got, dt, b.SOC())
	return got
}

// Charge implements Store. A NaN offer is treated as zero.
func (b *KiBaM) Charge(offered units.Watts, dt time.Duration) units.Watts {
	if !(offered > 0) || dt <= 0 {
		b.Idle(dt)
		return 0
	}
	p := math.Min(float64(offered), float64(b.maxCharge))
	// Do not overfill: cap by the remaining headroom spread over the step.
	headroom := float64(b.capacity) - (b.y1 + b.y2)
	p = math.Min(p, headroom/dt.Seconds())
	if p <= 0 {
		b.Idle(dt)
		return 0
	}
	b.step(-p, dt)
	got := units.Watts(p)
	b.recordIn(got, dt, b.SOC())
	return got
}

// Deliverable implements Store: the lesser of the power rating and what
// the available well can sustain for dt.
func (b *KiBaM) Deliverable(dt time.Duration) units.Watts {
	if dt <= 0 {
		return 0
	}
	p := b.maxSustainable(dt)
	if rated := float64(b.maxDischarge); p > rated {
		p = rated
	}
	if p < 0 {
		p = 0
	}
	return units.Watts(p)
}

// Idle implements Store.
func (b *KiBaM) Idle(dt time.Duration) {
	if dt > 0 {
		b.step(0, dt)
	}
}

// SOC implements Store. The ratio is clamped to [0,1]: splitting the
// capacity across the wells at construction can round the sum a few ULPs
// above the capacity.
func (b *KiBaM) SOC() float64 {
	return math.Min(1, math.Max(0, (b.y1+b.y2)/float64(b.capacity)))
}

// AvailableSOC returns the fill level of the available well alone, the
// quantity an LVD device effectively senses through terminal voltage.
func (b *KiBaM) AvailableSOC() float64 {
	return math.Min(1, math.Max(0, b.y1/(b.c*float64(b.capacity))))
}

// Capacity implements Store.
func (b *KiBaM) Capacity() units.Joules { return b.capacity }

// MaxDischarge implements Store.
func (b *KiBaM) MaxDischarge() units.Watts { return b.maxDischarge }

// MaxCharge implements Store.
func (b *KiBaM) MaxCharge() units.Watts { return b.maxCharge }

// UsageStats returns the accumulated usage counters.
func (b *KiBaM) UsageStats() Stats { return b.stats }

// SizeForAutonomy returns the nominal capacity a KiBaM battery with the
// given c and k (0 selects defaults) needs so that it sustains load for
// exactly the autonomy duration starting from full charge. This is how
// rack cabinets are sized from the paper's "50 s at full rack load" spec:
// because of the rate-capacity effect the nominal capacity must exceed
// load×autonomy.
//
// The search is a pure function of its arguments but expensive — a
// 40-step binary search of full 100 ms-tick drain simulations — and every
// rack cabinet of every run re-derives it, so results are memoized
// process-wide (see sizecache.go).
func SizeForAutonomy(load units.Watts, autonomy time.Duration, c, k float64) units.Joules {
	if c == 0 {
		c = DefaultC
	}
	if k == 0 {
		k = DefaultK
	}
	if load <= 0 || autonomy <= 0 {
		return 0
	}
	// Non-finite parameters bypass the cache: NaN keys never compare
	// equal, so caching them would grow the map without ever hitting, and
	// the uncached path preserves MustKiBaM's panic behaviour.
	if math.IsNaN(c) || math.IsNaN(k) || math.IsInf(k, 0) ||
		math.IsNaN(float64(load)) || math.IsInf(float64(load), 0) {
		return sizeForAutonomyUncached(load, autonomy, c, k)
	}
	return cachedSizeForAutonomy(load, autonomy, c, k)
}

// sizeForAutonomyUncached runs the binary search directly.
func sizeForAutonomyUncached(load units.Watts, autonomy time.Duration, c, k float64) units.Joules {
	// Binary search on capacity: sustained time is monotone in capacity.
	need := float64(load) * autonomy.Seconds()
	lo, hi := need, need/c*2
	sustains := func(cap_ float64) bool {
		b := MustKiBaM(KiBaMConfig{
			Capacity:     units.Joules(cap_),
			C:            c,
			K:            k,
			MaxDischarge: load * 10, // rating out of the way
		})
		const tick = 100 * time.Millisecond
		for elapsed := time.Duration(0); elapsed < autonomy; elapsed += tick {
			if b.Discharge(load, tick) < load {
				return false
			}
		}
		return true
	}
	for !sustains(hi) {
		hi *= 2
		if hi > need*1e3 {
			break
		}
	}
	for i := 0; i < 40; i++ {
		mid := (lo + hi) / 2
		if sustains(mid) {
			hi = mid
		} else {
			lo = mid
		}
	}
	return units.Joules(hi)
}
