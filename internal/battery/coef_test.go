package battery

import (
	"math"
	"testing"
	"time"

	"repro/internal/stats"
	"repro/internal/units"
)

// refKiBaM is a coefficient-cache-free reimplementation of the KiBaM
// closed form: every transcendental is recomputed with math.Exp on every
// call, with the exact expression grouping kibam.go uses. It is the
// reference the cached kernel must match bit-for-bit — the coefficient
// cache is a pure hoist, so any ULP of divergence is a bug.
type refKiBaM struct {
	capacity units.Joules
	c, k     float64
	y1, y2   float64
	leak     float64
}

func newRefKiBaM(b *KiBaM) *refKiBaM {
	return &refKiBaM{capacity: b.capacity, c: b.c, k: b.k, y1: b.y1, y2: b.y2, leak: b.leak}
}

func (r *refKiBaM) step(p float64, dt time.Duration) {
	if dt <= 0 {
		return
	}
	t := dt.Seconds()
	k := r.k
	c := r.c
	y0 := r.y1 + r.y2
	ekt := math.Exp(-k * t)
	y1 := r.y1*ekt + (y0*k*c-p)*(1-ekt)/k - p*c*(k*t-1+ekt)/k
	y2 := r.y2*ekt + y0*(1-c)*(1-ekt) - p*(1-c)*(k*t-1+ekt)/k
	if r.leak > 0 {
		decay := math.Exp(-r.leak * t)
		y1 *= decay
		y2 *= decay
	}
	y1 = math.Max(0, math.Min(y1, c*float64(r.capacity)))
	y2 = math.Max(0, math.Min(y2, (1-c)*float64(r.capacity)))
	r.y1, r.y2 = y1, y2
}

func (r *refKiBaM) maxSustainable(dt time.Duration) float64 {
	if dt <= 0 {
		return 0
	}
	t := dt.Seconds()
	k := r.k
	c := r.c
	y0 := r.y1 + r.y2
	ekt := math.Exp(-k * t)
	a := r.y1*ekt + y0*k*c*(1-ekt)/k
	bb := (1 - ekt) / k + c*(k*t-1+ekt)/k
	if bb <= 0 {
		return 0
	}
	return a / bb
}

func (r *refKiBaM) deliverable(dt time.Duration, rated units.Watts) units.Watts {
	if dt <= 0 {
		return 0
	}
	p := r.maxSustainable(dt)
	if p > float64(rated) {
		p = float64(rated)
	}
	if p < 0 {
		p = 0
	}
	return units.Watts(p)
}

// checkKiBaMAgainstRef drives a cached battery and the exp-per-call
// reference through the same op sequence and demands exact float64
// equality of the wells, maxSustainable and Deliverable at every step.
func checkKiBaMAgainstRef(t *testing.T, b *KiBaM, ops int, nextOp func(i int) (p float64, dt time.Duration)) {
	t.Helper()
	ref := newRefKiBaM(b)
	for i := 0; i < ops; i++ {
		p, dt := nextOp(i)
		if got, want := b.maxSustainable(dt), ref.maxSustainable(dt); got != want {
			t.Fatalf("op %d (dt=%v): maxSustainable = %v, ref %v (Δ %g)",
				i, dt, got, want, got-want)
		}
		if got, want := b.Deliverable(dt), ref.deliverable(dt, b.maxDischarge); got != want {
			t.Fatalf("op %d (dt=%v): Deliverable = %v, ref %v", i, dt, got, want)
		}
		b.step(p, dt)
		ref.step(p, dt)
		if b.y1 != ref.y1 || b.y2 != ref.y2 {
			t.Fatalf("op %d (p=%v, dt=%v): wells (%v, %v) diverged from ref (%v, %v)",
				i, p, dt, b.y1, b.y2, ref.y1, ref.y2)
		}
	}
}

// TestKiBaMCoefBitIdentity is the property test pinning the coefficient
// cache: across random configurations (c, k, leak, SOC), random powers
// spanning charge and discharge, and tick widths that alternate between
// repeats (cache hits) and changes (cache invalidation), the cached
// closed form must equal recomputing every exponential, bit for bit.
func TestKiBaMCoefBitIdentity(t *testing.T) {
	rng := stats.NewRNG(71)
	dtPool := []time.Duration{
		100 * time.Millisecond, time.Second, 100 * time.Millisecond,
		33 * time.Millisecond, 5 * time.Second, time.Minute,
		100 * time.Millisecond, 0, -time.Second, 250 * time.Millisecond,
	}
	for trial := 0; trial < 200; trial++ {
		r := rng.Split(uint64(trial))
		cfg := KiBaMConfig{
			Capacity:   units.Joules(math.Exp(r.Range(0, 20))), // 1 J … ~5e8 J
			C:          r.Range(0.05, 0.95),
			K:          math.Exp(r.Range(math.Log(1e-6), math.Log(1e-1))),
			InitialSOC: r.Range(0.01, 1),
		}
		if trial%3 == 0 {
			cfg.SelfDischargePerMonth = r.Range(0.001, 0.5)
		}
		b := MustKiBaM(cfg)
		span := float64(b.maxDischarge) * 2
		checkKiBaMAgainstRef(t, b, 60, func(i int) (float64, time.Duration) {
			// Hold each dt for a few ops so the cache actually hits, then
			// move on so it re-keys.
			dt := dtPool[(i/3)%len(dtPool)]
			return r.Range(-span, span), dt
		})
	}
}

// FuzzKiBaMCoefIdentity extends the property test to fuzzed
// configurations and op streams: for any battery NewKiBaM accepts and
// any power/step sequence, the cached kernel and the exp-per-call
// reference must agree exactly.
func FuzzKiBaMCoefIdentity(f *testing.F) {
	f.Add(float64(260640), 0.62, 4.5e-4, 1.0, 0.0, []byte("ddddcciiddcc"))
	f.Add(float64(1200), 0.3, 1e-3, 0.05, 0.03, []byte{0, 255, 17, 84, 200, 3})
	f.Add(float64(1), 0.62, 4.5e-4, 0.5, 0.9, []byte("id"))
	f.Fuzz(func(t *testing.T, capacity, c, k, soc, leak float64, ops []byte) {
		b, err := NewKiBaM(KiBaMConfig{
			Capacity:              units.Joules(capacity),
			C:                     c,
			K:                     k,
			InitialSOC:            soc,
			SelfDischargePerMonth: leak,
		})
		if err != nil {
			return
		}
		if len(ops) > 128 {
			ops = ops[:128]
		}
		ref := newRefKiBaM(b)
		for i, op := range ops {
			dt := time.Duration(1+int(op>>4)) * 100 * time.Millisecond
			p := (float64(op)/64 - 1) * float64(b.maxDischarge)
			if got, want := b.maxSustainable(dt), ref.maxSustainable(dt); got != want {
				t.Fatalf("op %d: maxSustainable = %v, ref %v", i, got, want)
			}
			b.step(p, dt)
			ref.step(p, dt)
			if b.y1 != ref.y1 || b.y2 != ref.y2 {
				t.Fatalf("op %d: wells (%v, %v) diverged from ref (%v, %v)",
					i, b.y1, b.y2, ref.y1, ref.y2)
			}
		}
	})
}
