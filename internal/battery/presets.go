package battery

import (
	"time"

	"repro/internal/units"
)

// Presets reproducing the storage hardware named in the paper's
// methodology: the Facebook Open-Compute V1 rack battery cabinet the
// evaluation assumes (50 s autonomy at full rack load, LVD-protected), and
// the YUASA UPS units of the scaled-down testbed (800 W for 10 minutes).

// RackCabinetAutonomy is the full-load autonomy of the evaluated rack
// battery cabinet.
const RackCabinetAutonomy = 50 * time.Second

// NewRackCabinet builds a Facebook-V1-style per-rack battery cabinet sized
// to sustain fullLoad for RackCabinetAutonomy, wrapped in an LVD.
func NewRackCabinet(fullLoad units.Watts) *LVD {
	cap_ := SizeForAutonomy(fullLoad, RackCabinetAutonomy, 0, 0)
	b := MustKiBaM(KiBaMConfig{
		Capacity: cap_,
		// The cabinet must deliver full rack load with margin.
		MaxDischarge: fullLoad * 2,
		// Recharge in roughly 15 minutes of full headroom: cabinets are
		// built for cyclic peak-shaving duty, not trickle standby.
		MaxCharge: units.Watts(float64(cap_) / 900),
	})
	return NewLVD(b, 0.05, 0.20)
}

// NewTestbedUPS builds one YUASA-style UPS unit from the scaled-down
// hardware platform: the three-unit set totals 800 W for 10 minutes, so
// one unit carries a third of that.
func NewTestbedUPS() *LVD {
	const load = units.Watts(800.0 / 3)
	cap_ := SizeForAutonomy(load, 10*time.Minute, 0, 0)
	b := MustKiBaM(KiBaMConfig{
		Capacity:     cap_,
		MaxDischarge: load * 3,
		MaxCharge:    units.Watts(float64(cap_) / (4 * 3600)),
	})
	return NewLVD(b, 0.05, 0.20)
}

// NewMicroDEB builds the μDEB super-capacitor bank for a rack. capacity is
// the usable energy; the paper's example sizes 0.35 Wh for 0.5 s of
// current sharing on a 5 kW rack (power rating ≈ rack nameplate).
func NewMicroDEB(capacity units.Joules, rackNameplate units.Watts) *SuperCap {
	return MustSuperCap(SuperCapConfig{
		Capacity: capacity,
		MaxPower: rackNameplate * 2,
	})
}
