package placement

import (
	"sort"
	"testing"
)

func TestClusterValidation(t *testing.T) {
	if _, err := NewCluster(0, 10, 4, PackLowestID, 1); err == nil {
		t.Error("zero racks should fail")
	}
	if _, err := NewCluster(2, 0, 4, PackLowestID, 1); err == nil {
		t.Error("zero servers should fail")
	}
	if _, err := NewCluster(2, 2, 0, PackLowestID, 1); err == nil {
		t.Error("zero slots should fail")
	}
}

func TestPackPolicyFillsInOrder(t *testing.T) {
	cl, _ := NewCluster(2, 2, 2, PackLowestID, 1)
	var servers []int
	for i := 0; i < 4; i++ {
		_, s, err := cl.Launch()
		if err != nil {
			t.Fatal(err)
		}
		servers = append(servers, s)
	}
	want := []int{0, 0, 1, 1}
	for i, w := range want {
		if servers[i] != w {
			t.Fatalf("pack order %v, want %v", servers, want)
		}
	}
}

func TestSpreadPolicyBalances(t *testing.T) {
	cl, _ := NewCluster(2, 2, 2, SpreadLeastLoaded, 1)
	var servers []int
	for i := 0; i < 4; i++ {
		_, s, _ := cl.Launch()
		servers = append(servers, s)
	}
	sort.Ints(servers)
	if servers[0] == servers[1] {
		t.Fatalf("spread doubled up early: %v", servers)
	}
	want := []int{0, 1, 2, 3}
	for i, w := range want {
		if servers[i] != w {
			t.Fatalf("spread placed %v, want one VM per server first", servers)
		}
	}
}

func TestRandomFitStaysInBounds(t *testing.T) {
	cl, _ := NewCluster(3, 3, 2, RandomFit, 5)
	for i := 0; i < 18; i++ {
		_, s, err := cl.Launch()
		if err != nil {
			t.Fatal(err)
		}
		if s < 0 || s >= 9 {
			t.Fatalf("server %d out of range", s)
		}
	}
	if _, _, err := cl.Launch(); err == nil {
		t.Fatal("full cluster should reject")
	}
}

func TestTerminateFreesSlot(t *testing.T) {
	cl, _ := NewCluster(1, 1, 1, PackLowestID, 1)
	vm, _, err := cl.Launch()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := cl.Launch(); err == nil {
		t.Fatal("should be full")
	}
	cl.Terminate(vm)
	if _, _, err := cl.Launch(); err != nil {
		t.Fatal("terminate did not free the slot")
	}
	cl.Terminate(999) // unknown id: no panic, no effect
}

func TestUtilization(t *testing.T) {
	cl, _ := NewCluster(1, 2, 2, PackLowestID, 1)
	if cl.Utilization() != 0 {
		t.Fatal("fresh cluster should be empty")
	}
	cl.Launch()
	cl.Launch()
	if cl.Utilization() != 0.5 {
		t.Fatalf("utilization = %v, want 0.5", cl.Utilization())
	}
}

func TestRackOf(t *testing.T) {
	cl, _ := NewCluster(3, 10, 1, PackLowestID, 1)
	if cl.RackOf(0) != 0 || cl.RackOf(9) != 0 || cl.RackOf(10) != 1 || cl.RackOf(29) != 2 {
		t.Fatal("rack mapping wrong")
	}
}

func TestCampaignValidation(t *testing.T) {
	bad := []CampaignConfig{
		{Occupancy: 1.5},
		{WantServers: 20},
		{TargetRack: 99},
		{OracleAccuracy: 2},
	}
	for i, cfg := range bad {
		if _, err := RunCampaign(cfg); err == nil {
			t.Errorf("config %d should fail", i)
		}
	}
}

func TestOpportunisticCampaignSucceeds(t *testing.T) {
	res, err := RunCampaign(CampaignConfig{TargetRack: -1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Succeeded {
		t.Fatalf("opportunistic hunt failed after %d probes", res.Probes)
	}
	if len(res.Servers) != 4 {
		t.Fatalf("squad size = %d", len(res.Servers))
	}
	if res.Probes < 4 {
		t.Fatalf("cannot assemble 4 servers in %d probes", res.Probes)
	}
	// All believed-squad servers live on the squad rack, modulo oracle
	// noise.
	wrong := 0
	for _, s := range res.Servers {
		if s/10 != res.Rack {
			wrong++
		}
	}
	if wrong != res.MisidentifiedKept {
		t.Fatalf("misidentified bookkeeping off: %d wrong vs %d recorded",
			wrong, res.MisidentifiedKept)
	}
}

func TestTargetedCostsMoreThanOpportunistic(t *testing.T) {
	sum := func(target int) int {
		total := 0
		for seed := uint64(1); seed <= 8; seed++ {
			res, err := RunCampaign(CampaignConfig{
				TargetRack: target,
				Policy:     RandomFit,
				Seed:       seed,
			})
			if err != nil {
				t.Fatal(err)
			}
			total += res.Probes
		}
		return total
	}
	targeted := sum(5)
	opportunistic := sum(-1)
	if targeted <= opportunistic {
		t.Fatalf("hunting one specific rack (%d probes) should cost more than any-rack (%d)",
			targeted, opportunistic)
	}
}

func TestSpreadPolicyRaisesAttackCost(t *testing.T) {
	run := func(p Policy) int {
		total := 0
		for seed := uint64(1); seed <= 8; seed++ {
			res, err := RunCampaign(CampaignConfig{
				TargetRack: 3,
				Policy:     p,
				Seed:       seed,
			})
			if err != nil {
				t.Fatal(err)
			}
			total += res.Probes
		}
		return total
	}
	pack := run(PackLowestID)
	random := run(RandomFit)
	// A packing scheduler concentrates new VMs, so a patient attacker
	// lands a specific rack cheaply only when the frontier is there;
	// random placement gives every probe a 1/racks shot. Both must at
	// least complete.
	if pack == 0 || random == 0 {
		t.Fatal("campaigns did not run")
	}
}

func TestNoisyOracleKeepsWrongServers(t *testing.T) {
	noisy := 0
	for seed := uint64(1); seed <= 10; seed++ {
		res, err := RunCampaign(CampaignConfig{
			TargetRack:     -1,
			OracleAccuracy: 0.6,
			Policy:         RandomFit,
			Seed:           seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		noisy += res.MisidentifiedKept
	}
	if noisy == 0 {
		t.Fatal("a 60%-accurate oracle should misplace some squad members")
	}
}

func TestCampaignDeterminism(t *testing.T) {
	a, _ := RunCampaign(CampaignConfig{TargetRack: 2, Seed: 7})
	b, _ := RunCampaign(CampaignConfig{TargetRack: 2, Seed: 7})
	if a.Probes != b.Probes || a.Succeeded != b.Succeeded {
		t.Fatal("campaigns are not deterministic")
	}
}

func TestCampaignCost(t *testing.T) {
	res := &CampaignResult{Probes: 120}
	if got := CampaignCost(res, 0.05); got != 6 {
		t.Fatalf("cost = %v, want 6", got)
	}
}

func TestPolicyString(t *testing.T) {
	if PackLowestID.String() != "pack" || SpreadLeastLoaded.String() != "spread" ||
		RandomFit.String() != "random" {
		t.Error("policy names wrong")
	}
	if Policy(9).String() != "Policy(9)" {
		t.Error("unknown policy formatting wrong")
	}
}
