// Package placement models the preparation step of the paper's threat
// model (§3.1): before any power can be abused, the attacker must land
// virtual machines on physical servers of the victim rack — "either
// opportunistically look for such a host by repeatedly creating many
// VMs ... or keep rebooting a few VMs until they reach the same desired
// location" (the Ristenpart-style co-residency game). The package
// provides a slot-based cloud cluster with pluggable scheduling policies,
// tenant churn, and an attacker campaign that measures how many probe
// VMs (and how much money) it takes to assemble an attack squad on one
// rack.
//
// Concurrency: a Cluster is mutable and single-goroutine, but RunCampaign
// builds its whole world (cluster, tenants, RNG) from its config, so
// independent campaigns may run concurrently — the sweep runner exploits
// this in the placement ablation.
package placement

import (
	"fmt"

	"repro/internal/stats"
)

// Policy is a VM scheduling policy.
type Policy int

// The implemented policies.
const (
	// PackLowestID fills the first server with free slots — the layout
	// friendliest to an attacker hunting a specific rack.
	PackLowestID Policy = iota
	// SpreadLeastLoaded balances across servers.
	SpreadLeastLoaded
	// RandomFit picks a random server with a free slot.
	RandomFit
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case PackLowestID:
		return "pack"
	case SpreadLeastLoaded:
		return "spread"
	case RandomFit:
		return "random"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Cluster is a slot-based VM cluster: racks × servers-per-rack servers,
// each with a fixed number of VM slots.
type Cluster struct {
	racks, spr, slots int
	used              []int // per-server used slots
	policy            Policy
	rng               *stats.RNG

	nextVM int
	owner  map[int]int // vm id -> server
}

// NewCluster builds a cluster.
func NewCluster(racks, serversPerRack, slotsPerServer int, policy Policy, seed uint64) (*Cluster, error) {
	if racks <= 0 || serversPerRack <= 0 || slotsPerServer <= 0 {
		return nil, fmt.Errorf("placement: invalid cluster %dx%dx%d", racks, serversPerRack, slotsPerServer)
	}
	return &Cluster{
		racks: racks, spr: serversPerRack, slots: slotsPerServer,
		used:   make([]int, racks*serversPerRack),
		policy: policy,
		rng:    stats.NewRNG(seed).Split(0x9149e),
		owner:  map[int]int{},
	}, nil
}

// Servers reports the number of servers.
func (c *Cluster) Servers() int { return len(c.used) }

// RackOf returns the rack hosting server s.
func (c *Cluster) RackOf(server int) int { return server / c.spr }

// Utilization reports the fraction of slots in use.
func (c *Cluster) Utilization() float64 {
	total := 0
	for _, u := range c.used {
		total += u
	}
	return float64(total) / float64(len(c.used)*c.slots)
}

// Launch schedules one VM and returns its id and hosting server, or an
// error when the cluster is full.
func (c *Cluster) Launch() (vm, server int, err error) {
	server = -1
	switch c.policy {
	case PackLowestID:
		for s, u := range c.used {
			if u < c.slots {
				server = s
				break
			}
		}
	case SpreadLeastLoaded:
		best := c.slots
		for s, u := range c.used {
			if u < best {
				best = u
				server = s
			}
		}
	case RandomFit:
		free := make([]int, 0, len(c.used))
		for s, u := range c.used {
			if u < c.slots {
				free = append(free, s)
			}
		}
		if len(free) > 0 {
			server = free[c.rng.Intn(len(free))]
		}
	}
	if server < 0 {
		return 0, 0, fmt.Errorf("placement: cluster full")
	}
	c.used[server]++
	vm = c.nextVM
	c.nextVM++
	c.owner[vm] = server
	return vm, server, nil
}

// Terminate releases a VM. Unknown ids are ignored.
func (c *Cluster) Terminate(vm int) {
	if s, ok := c.owner[vm]; ok {
		c.used[s]--
		delete(c.owner, vm)
	}
}

// fill launches background tenant VMs until the target utilization.
func (c *Cluster) fill(target float64) []int {
	var tenants []int
	for c.Utilization() < target {
		vm, _, err := c.Launch()
		if err != nil {
			break
		}
		tenants = append(tenants, vm)
	}
	return tenants
}

// CampaignConfig parameterizes the attacker's co-residency hunt.
type CampaignConfig struct {
	// Racks, ServersPerRack, SlotsPerServer shape the cluster. Zeros
	// select 22×10×4.
	Racks, ServersPerRack, SlotsPerServer int
	// Policy is the cloud's scheduler. Default PackLowestID.
	Policy Policy
	// Occupancy is the tenant fill level in [0, 1). 0 selects 0.6.
	Occupancy float64
	// WantServers is how many distinct servers of one rack the attacker
	// needs (the paper's attacks use 1-4 malicious nodes). 0 selects 4.
	WantServers int
	// TargetRack pins the hunt to a specific rack; -1 lets the attacker
	// accept any rack ("opportunistically look for such a host").
	TargetRack int
	// OracleAccuracy is the probability a co-residency probe correctly
	// identifies its rack (network-latency side channels are noisy). 0
	// selects 0.95.
	OracleAccuracy float64
	// MaxProbes bounds the campaign. 0 selects 100000.
	MaxProbes int
	// ChurnPerProbe is the expected number of tenant arrivals+departures
	// between attacker probes. 0 selects 1.
	ChurnPerProbe float64
	// Seed drives all randomness.
	Seed uint64
}

func (c CampaignConfig) withDefaults() CampaignConfig {
	if c.Racks == 0 {
		c.Racks = 22
	}
	if c.ServersPerRack == 0 {
		c.ServersPerRack = 10
	}
	if c.SlotsPerServer == 0 {
		c.SlotsPerServer = 4
	}
	if c.Occupancy == 0 {
		c.Occupancy = 0.6
	}
	if c.WantServers == 0 {
		c.WantServers = 4
	}
	if c.OracleAccuracy == 0 {
		c.OracleAccuracy = 0.95
	}
	if c.MaxProbes == 0 {
		c.MaxProbes = 100000
	}
	if c.ChurnPerProbe == 0 {
		c.ChurnPerProbe = 1
	}
	return c
}

// Validate reports a configuration error, if any.
func (c CampaignConfig) Validate() error {
	c = c.withDefaults()
	if c.Occupancy < 0 || c.Occupancy >= 1 {
		return fmt.Errorf("placement: occupancy %v out of [0,1)", c.Occupancy)
	}
	if c.WantServers <= 0 || c.WantServers > c.ServersPerRack {
		return fmt.Errorf("placement: want %d servers of a %d-server rack",
			c.WantServers, c.ServersPerRack)
	}
	if c.TargetRack >= c.Racks {
		return fmt.Errorf("placement: target rack %d of %d", c.TargetRack, c.Racks)
	}
	if c.OracleAccuracy <= 0 || c.OracleAccuracy > 1 {
		return fmt.Errorf("placement: oracle accuracy %v out of (0,1]", c.OracleAccuracy)
	}
	return nil
}

// CampaignResult summarizes a co-residency hunt.
type CampaignResult struct {
	// Succeeded reports whether the squad was assembled within MaxProbes.
	Succeeded bool
	// Probes is the number of VMs the attacker launched.
	Probes int
	// Rack is the rack the squad landed on.
	Rack int
	// Servers are the distinct compromised servers (global ids).
	Servers []int
	// MisidentifiedKept counts squad VMs the noisy oracle placed on the
	// wrong rack — the attacker believes they are on Rack but they are
	// not (these weaken the eventual power attack).
	MisidentifiedKept int
}

// RunCampaign plays the attacker's probe-and-keep strategy: launch a VM,
// query the (noisy) co-residency oracle for its rack, keep it if it lands
// on the squad's rack on a server not yet held, otherwise terminate it.
// Tenant churn proceeds between probes.
func RunCampaign(cfg CampaignConfig) (*CampaignResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	rng := stats.NewRNG(cfg.Seed).Split(0xca3b)
	cl, err := NewCluster(cfg.Racks, cfg.ServersPerRack, cfg.SlotsPerServer, cfg.Policy, cfg.Seed)
	if err != nil {
		return nil, err
	}
	tenants := cl.fill(cfg.Occupancy)

	res := &CampaignResult{Rack: cfg.TargetRack}
	held := map[int]int{} // server -> vm
	squadRack := cfg.TargetRack

	for res.Probes < cfg.MaxProbes && len(held) < cfg.WantServers {
		// Tenant churn between probes.
		n := rng.Poisson(cfg.ChurnPerProbe)
		for i := 0; i < n; i++ {
			if rng.Bool(0.5) && len(tenants) > 0 {
				idx := rng.Intn(len(tenants))
				cl.Terminate(tenants[idx])
				tenants[idx] = tenants[len(tenants)-1]
				tenants = tenants[:len(tenants)-1]
			} else if cl.Utilization() < 0.95 {
				if vm, _, err := cl.Launch(); err == nil {
					tenants = append(tenants, vm)
				}
			}
		}

		vm, server, err := cl.Launch()
		if err != nil {
			// Full cluster: churn will free slots; skip this probe.
			continue
		}
		res.Probes++
		trueRack := cl.RackOf(server)
		observed := trueRack
		if !rng.Bool(cfg.OracleAccuracy) {
			observed = rng.Intn(cfg.Racks) // noisy misread
		}
		if squadRack < 0 {
			// Opportunistic: the first observed rack becomes the target.
			squadRack = observed
			res.Rack = squadRack
		}
		if observed == squadRack {
			if _, dup := held[server]; !dup {
				held[server] = vm
				if trueRack != squadRack {
					res.MisidentifiedKept++
				}
				continue // keep it
			}
		}
		cl.Terminate(vm)
	}
	res.Succeeded = len(held) >= cfg.WantServers
	for s := range held {
		res.Servers = append(res.Servers, s)
	}
	return res, nil
}

// CampaignCost prices a campaign: probe VMs are billed for a minimum
// interval each (perProbeUSD), the classic economics of co-residency
// hunting.
func CampaignCost(res *CampaignResult, perProbeUSD float64) float64 {
	return float64(res.Probes) * perProbeUSD
}
