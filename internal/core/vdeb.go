// Package core implements the paper's contribution: the PAD (Power Attack
// Defense) energy-management patch. It contains the vDEB virtual battery
// pool controller (Algorithm 1), the μDEB spike shaver built on an ORing
// FET and a super-capacitor bank, the three-level hierarchical security
// policy of Figure 9, and the emergency load-shedding planner.
//
// Concurrency: controllers and μDEB units hold per-run state and are not
// safe for concurrent use; each belongs to the single simulation run (and
// goroutine) that constructed it.
package core

import (
	"fmt"

	"repro/internal/units"
)

// VDEBController implements the paper's Algorithm 1: two-level battery
// load sharing across the racks behind one PDU. Instead of each rack
// shaving its own excess, the controller pools the shave demand and
// assigns per-rack discharge power proportional to state of charge,
// capped at Pideal so no battery is driven beyond its safe rate. Racks
// with drained batteries are assigned (nearly) nothing — the mechanism
// that "hides vulnerable racks" from a Phase-I attacker.
type VDEBController struct {
	// PIdeal is the per-rack ideal (maximum safe) discharge power.
	PIdeal units.Watts

	order []int // reusable SOC-sort scratch for AllocateInto
}

// NewVDEBController creates a controller with the given per-rack
// discharge bound.
func NewVDEBController(pIdeal units.Watts) (*VDEBController, error) {
	if pIdeal <= 0 {
		return nil, fmt.Errorf("core: Pideal must be positive, got %v", pIdeal)
	}
	return &VDEBController{PIdeal: pIdeal}, nil
}

// Allocate distributes the pool-wide shave demand pShave across racks
// given their battery SOCs (in [0,1]). It returns per-rack discharge
// assignments with:
//
//   - every assignment in [0, PIdeal],
//   - total = min(pShave, n·PIdeal) up to rounding, and
//   - assignments proportional to SOC except where the PIdeal cap binds
//     (resolved high-SOC-first, as in Algorithm 1's quicksort loop).
//
// Note on fidelity: Algorithm 1 as printed decrements the remaining shave
// demand by Pideal/N inside the cap loop (line 14); that leaves the
// proportional pass over-allocating whenever any rack saturates. We
// decrement by the full Pideal actually assigned, which is the evident
// intent (total conservation).
func (c *VDEBController) Allocate(socs []float64, pShave units.Watts) []units.Watts {
	return c.AllocateInto(make([]units.Watts, len(socs)), socs, pShave)
}

// AllocateInto is Allocate writing its assignments into out, which must
// have len(socs) entries; it returns out. The controller reuses an
// internal sort scratch across calls, so a caller that also reuses out
// allocates nothing on the periodic refresh path.
func (c *VDEBController) AllocateInto(out []units.Watts, socs []float64, pShave units.Watts) []units.Watts {
	n := len(socs)
	if len(out) != n {
		panic("core: AllocateInto out/socs length mismatch")
	}
	for i := range out {
		out[i] = 0
	}
	if n == 0 || pShave <= 0 {
		return out
	}
	// Saturated pool: "evenly usage DEB" at the safe bound.
	if pShave >= c.PIdeal*units.Watts(n) {
		for i := range out {
			out[i] = c.PIdeal
		}
		return out
	}
	// Sort rack indices by SOC, descending (Algorithm 1 lines 9-10).
	// Stable insertion sort: a stable order is unique, so this matches
	// sort.SliceStable bit for bit while allocating nothing — the
	// allocation-free property lets the quiescent-skip detector rerun the
	// allocation as a pure check, and rack counts are small enough that
	// O(n²) beats the reflection-based library sort anyway.
	if cap(c.order) < n {
		c.order = make([]int, n)
	}
	order := c.order[:n]
	for i := range order {
		order[i] = i
	}
	for i := 1; i < n; i++ {
		x := order[i]
		j := i - 1
		for j >= 0 && socs[order[j]] < socs[x] {
			order[j+1] = order[j]
			j--
		}
		order[j+1] = x
	}
	socTotal := 0.0
	for _, s := range socs {
		socTotal += s
	}
	remaining := pShave
	k := 0
	// Cap loop (lines 11-15): while the proportional share of the current
	// highest-SOC rack would exceed PIdeal, pin it to PIdeal.
	for ; k < n; k++ {
		idx := order[k]
		if socTotal <= 0 {
			break
		}
		share := units.Watts(socs[idx] / socTotal * float64(remaining))
		if share <= c.PIdeal {
			break
		}
		out[idx] = c.PIdeal
		socTotal -= socs[idx]
		remaining -= c.PIdeal
	}
	// Proportional pass (lines 16-18) over the rest.
	if socTotal > 0 && remaining > 0 {
		for ; k < n; k++ {
			idx := order[k]
			out[idx] = units.Watts(socs[idx] / socTotal * float64(remaining))
		}
	}
	return out
}

// PoolSOC returns the pool-mean SOC, the "vDEB level" input of the
// security policy.
func PoolSOC(socs []float64) float64 {
	if len(socs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range socs {
		s += x
	}
	return s / float64(len(socs))
}
