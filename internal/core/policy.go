package core

import "fmt"

// Level is a PAD hierarchical security level (Figure 9).
type Level int

// The three security levels.
const (
	// Level1 — Normal: shave visible peaks with the vDEB pool.
	Level1 Level = 1
	// Level2 — Minor Incident: the vDEB pool is drained; watch the μDEB
	// and collect load information for inspection.
	Level2 Level = 2
	// Level3 — Emergency: both backups exhausted; shed or migrate load.
	Level3 Level = 3
)

// String implements fmt.Stringer.
func (l Level) String() string {
	switch l {
	case Level1:
		return "L1-Normal"
	case Level2:
		return "L2-MinorIncident"
	case Level3:
		return "L3-Emergency"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// PolicyInputs are the three signals the security policy evaluates.
type PolicyInputs struct {
	// VDEBSOC is the virtual pool's mean state of charge in [0, 1].
	VDEBSOC float64
	// MicroSOC is the μDEB bank state of charge in [0, 1].
	MicroSOC float64
	// VisiblePeak reports whether a visible power peak is currently
	// identified (VP > 0 in Figure 9).
	VisiblePeak bool
}

// Policy is the hierarchical emergency-handling state machine. Hysteresis
// thresholds separate "empty" from "recharged" so the level does not
// chatter at a boundary.
type Policy struct {
	// EmptyBelow is the SOC at or below which a backup counts as empty.
	// 0 selects 0.05.
	EmptyBelow float64
	// RechargedAbove is the SOC above which a drained backup counts as
	// recharged. 0 selects 0.30.
	RechargedAbove float64
	// StrictInitial selects Level2 (instead of Level1) for the
	// [vDEB>0, μDEB==0] initial states Figure 9 leaves to the
	// organization's security requirement.
	StrictInitial bool

	level Level
}

// NewPolicy creates a policy initialized from the first observed inputs
// per Figure 9's initial-state table.
func NewPolicy(strict bool, initial PolicyInputs) *Policy {
	p := &Policy{EmptyBelow: 0.05, RechargedAbove: 0.30, StrictInitial: strict}
	p.level = p.initialLevel(initial)
	return p
}

func (p *Policy) empty(soc float64) bool     { return soc <= p.EmptyBelow }
func (p *Policy) recharged(soc float64) bool { return soc > p.RechargedAbove }

// initialLevel encodes Figure 9's table over (vDEB>0, μDEB>0, VP>0).
func (p *Policy) initialLevel(in PolicyInputs) Level {
	v := !p.empty(in.VDEBSOC)
	u := !p.empty(in.MicroSOC)
	vp := in.VisiblePeak
	switch {
	case !v && !u:
		return Level3 // rows 000, 001
	case !v && u && !vp:
		return Level2 // row 010
	case !v && u && vp:
		return Level3 // row 011
	case v && !u:
		// rows 100, 101: organization's choice (L1/L2).
		if p.StrictInitial {
			return Level2
		}
		return Level1
	default:
		return Level1 // rows 110, 111
	}
}

// Level returns the current security level.
func (p *Policy) Level() Level { return p.level }

// Step evaluates one tick of inputs and returns the (possibly new) level,
// following Figure 9's transition arrows:
//
//	L1 → L2 when the vDEB pool empties,
//	L2 → L3 when the μDEB empties,
//	L3 → L2 when the μDEB is recharged,
//	L2 → L1 when the vDEB pool is recharged.
func (p *Policy) Step(in PolicyInputs) Level {
	switch p.level {
	case Level1:
		if p.empty(in.VDEBSOC) {
			p.level = Level2
		}
	case Level2:
		switch {
		case p.empty(in.MicroSOC):
			p.level = Level3
		case p.recharged(in.VDEBSOC):
			p.level = Level1
		}
	case Level3:
		if p.recharged(in.MicroSOC) {
			if p.recharged(in.VDEBSOC) {
				p.level = Level1
			} else {
				p.level = Level2
			}
		}
	}
	return p.level
}

// Holds reports whether Step(in) would leave the level unchanged — the
// state machine has no transition to take on these inputs. The level is
// the policy's only state, so a holding Step is a pure no-op; the
// quiescent-skip engine uses this to elide it over a span of identical
// inputs.
func (p *Policy) Holds(in PolicyInputs) bool {
	switch p.level {
	case Level1:
		return !p.empty(in.VDEBSOC)
	case Level2:
		return !p.empty(in.MicroSOC) && !p.recharged(in.VDEBSOC)
	case Level3:
		return !p.recharged(in.MicroSOC)
	}
	return true
}
