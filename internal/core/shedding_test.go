package core

import (
	"testing"

	"repro/internal/units"
)

func TestShedderValidation(t *testing.T) {
	if _, err := NewShedder(-0.1, 100); err == nil {
		t.Error("negative ratio should fail")
	}
	if _, err := NewShedder(1.5, 100); err == nil {
		t.Error("ratio above 1 should fail")
	}
	if _, err := NewShedder(0.03, 0); err == nil {
		t.Error("zero saving should fail")
	}
	s, err := NewShedder(0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if s.MaxRatio != 0.03 {
		t.Fatalf("default ratio = %v, want 0.03", s.MaxRatio)
	}
}

func TestShedderRecoversShortfall(t *testing.T) {
	s, _ := NewShedder(0.10, 200)
	socs := []float64{0.9, 0.1, 0.5}
	counts, recovered := s.Plan(500, socs, 10, 30)
	if recovered < 500 {
		t.Fatalf("recovered %v, want >= 500", recovered)
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 3 { // ceil(500/200)
		t.Fatalf("shed %d servers, want 3", total)
	}
	// Vulnerable-first: rack 1 (SOC 0.1) sheds first.
	if counts[1] == 0 {
		t.Fatal("most vulnerable rack shed nothing")
	}
}

func TestShedderRespectsMaxRatio(t *testing.T) {
	s, _ := NewShedder(0.03, 200)
	socs := make([]float64, 22)
	counts, recovered := s.Plan(1e6, socs, 10, 220)
	total := 0
	for _, c := range counts {
		total += c
	}
	if total > 6 { // 3% of 220 = 6.6 → 6
		t.Fatalf("shed %d servers, budget is 6", total)
	}
	if recovered != units.Watts(total*200) {
		t.Fatalf("recovered %v for %d servers", recovered, total)
	}
}

func TestShedderRespectsRackCapacity(t *testing.T) {
	s, _ := NewShedder(1.0, 100)
	socs := []float64{0.1, 0.9}
	counts, _ := s.Plan(1e6, socs, 5, 10)
	if counts[0] > 5 || counts[1] > 5 {
		t.Fatalf("rack over-shed: %v", counts)
	}
}

func TestShedderVulnerableFirstOrder(t *testing.T) {
	s, _ := NewShedder(0.5, 100)
	socs := []float64{0.8, 0.2, 0.5}
	counts, _ := s.Plan(250, socs, 10, 30) // needs 3 servers
	if counts[1] != 3 {
		t.Fatalf("lowest-SOC rack should shed all 3, got %v", counts)
	}
}

func TestShedderDegenerateInputs(t *testing.T) {
	s, _ := NewShedder(0.03, 100)
	if counts, rec := s.Plan(0, []float64{0.5}, 10, 10); rec != 0 || counts[0] != 0 {
		t.Error("zero shortfall should shed nothing")
	}
	if counts, rec := s.Plan(-5, []float64{0.5}, 10, 10); rec != 0 || counts[0] != 0 {
		t.Error("negative shortfall should shed nothing")
	}
	if counts, _ := s.Plan(100, nil, 10, 10); len(counts) != 0 {
		t.Error("no racks should return empty plan")
	}
	if _, rec := s.Plan(100, []float64{0.5}, 0, 10); rec != 0 {
		t.Error("zero servers per rack should shed nothing")
	}
}

func TestShedderTinyClusterZeroBudget(t *testing.T) {
	// 3% of 10 servers rounds to 0: nothing may be shed.
	s, _ := NewShedder(0.03, 100)
	counts, rec := s.Plan(1000, []float64{0.1}, 10, 10)
	if rec != 0 || counts[0] != 0 {
		t.Fatalf("tiny cluster shed %v (recovered %v)", counts, rec)
	}
}
