package core

import "testing"

func TestInitialStateTable(t *testing.T) {
	// Figure 9's initial-state table over (vDEB>0, μDEB>0, VP>0).
	cases := []struct {
		v, u   float64
		vp     bool
		strict bool
		want   Level
	}{
		{0, 0, false, false, Level3}, // 000
		{0, 0, true, false, Level3},  // 001
		{0, 1, false, false, Level2}, // 010
		{0, 1, true, false, Level3},  // 011
		{1, 0, false, false, Level1}, // 100 lax
		{1, 0, false, true, Level2},  // 100 strict
		{1, 0, true, false, Level1},  // 101 lax
		{1, 0, true, true, Level2},   // 101 strict
		{1, 1, false, false, Level1}, // 110
		{1, 1, true, false, Level1},  // 111
	}
	for _, c := range cases {
		p := NewPolicy(c.strict, PolicyInputs{VDEBSOC: c.v, MicroSOC: c.u, VisiblePeak: c.vp})
		if got := p.Level(); got != c.want {
			t.Errorf("initial(v=%v u=%v vp=%v strict=%v) = %v, want %v",
				c.v, c.u, c.vp, c.strict, got, c.want)
		}
	}
}

func TestTransitionL1ToL2OnVDEBEmpty(t *testing.T) {
	p := NewPolicy(false, PolicyInputs{VDEBSOC: 1, MicroSOC: 1})
	if got := p.Step(PolicyInputs{VDEBSOC: 0.5, MicroSOC: 1}); got != Level1 {
		t.Fatalf("healthy pool should stay L1, got %v", got)
	}
	if got := p.Step(PolicyInputs{VDEBSOC: 0.04, MicroSOC: 1}); got != Level2 {
		t.Fatalf("drained pool should move to L2, got %v", got)
	}
}

func TestTransitionL2ToL3OnMicroEmpty(t *testing.T) {
	p := NewPolicy(false, PolicyInputs{VDEBSOC: 0, MicroSOC: 1})
	if p.Level() != Level2 {
		t.Fatalf("setup: %v", p.Level())
	}
	if got := p.Step(PolicyInputs{VDEBSOC: 0, MicroSOC: 0.02}); got != Level3 {
		t.Fatalf("drained μDEB should move to L3, got %v", got)
	}
}

func TestTransitionL2BackToL1OnRecharge(t *testing.T) {
	p := NewPolicy(false, PolicyInputs{VDEBSOC: 0, MicroSOC: 1})
	// Recharged above hysteresis threshold.
	if got := p.Step(PolicyInputs{VDEBSOC: 0.5, MicroSOC: 1}); got != Level1 {
		t.Fatalf("recharged pool should return to L1, got %v", got)
	}
}

func TestHysteresisPreventsChatter(t *testing.T) {
	p := NewPolicy(false, PolicyInputs{VDEBSOC: 1, MicroSOC: 1})
	p.Step(PolicyInputs{VDEBSOC: 0.03, MicroSOC: 1}) // → L2
	// SOC wobbling in the hysteresis band (0.05, 0.30] keeps it at L2.
	for _, soc := range []float64{0.10, 0.25, 0.07, 0.28} {
		if got := p.Step(PolicyInputs{VDEBSOC: soc, MicroSOC: 1}); got != Level2 {
			t.Fatalf("hysteresis band SOC %v moved level to %v", soc, got)
		}
	}
}

func TestL3RecoveryPath(t *testing.T) {
	p := NewPolicy(false, PolicyInputs{VDEBSOC: 0, MicroSOC: 0})
	if p.Level() != Level3 {
		t.Fatalf("setup: %v", p.Level())
	}
	// μDEB recharged but vDEB still low: L3 → L2.
	if got := p.Step(PolicyInputs{VDEBSOC: 0.1, MicroSOC: 0.9}); got != Level2 {
		t.Fatalf("μDEB recharge should restore L2, got %v", got)
	}
	// Back down, then both recharged: straight to L1.
	p.Step(PolicyInputs{VDEBSOC: 0.1, MicroSOC: 0.02}) // → L3
	if got := p.Step(PolicyInputs{VDEBSOC: 0.9, MicroSOC: 0.9}); got != Level1 {
		t.Fatalf("full recharge should restore L1, got %v", got)
	}
}

func TestLevelString(t *testing.T) {
	if Level1.String() != "L1-Normal" || Level2.String() != "L2-MinorIncident" ||
		Level3.String() != "L3-Emergency" {
		t.Error("level names wrong")
	}
	if Level(7).String() != "Level(7)" {
		t.Error("unknown level formatting wrong")
	}
}

func TestFullAttackLevelTrajectory(t *testing.T) {
	// Simulate the level trajectory of a full two-phase attack: healthy →
	// pool drained (L2) → μDEB drained (L3) → recharge (L2, then L1).
	p := NewPolicy(false, PolicyInputs{VDEBSOC: 1, MicroSOC: 1})
	seq := []struct {
		in   PolicyInputs
		want Level
	}{
		{PolicyInputs{VDEBSOC: 0.7, MicroSOC: 1, VisiblePeak: true}, Level1},
		{PolicyInputs{VDEBSOC: 0.3, MicroSOC: 1, VisiblePeak: true}, Level1},
		{PolicyInputs{VDEBSOC: 0.02, MicroSOC: 1, VisiblePeak: true}, Level2},
		{PolicyInputs{VDEBSOC: 0.02, MicroSOC: 0.5}, Level2},
		{PolicyInputs{VDEBSOC: 0.02, MicroSOC: 0.01}, Level3},
		{PolicyInputs{VDEBSOC: 0.1, MicroSOC: 0.6}, Level2},
		{PolicyInputs{VDEBSOC: 0.6, MicroSOC: 0.9}, Level1},
	}
	for i, s := range seq {
		if got := p.Step(s.in); got != s.want {
			t.Fatalf("step %d: level %v, want %v", i, got, s.want)
		}
	}
}
