package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
	"repro/internal/units"
)

func mustController(t *testing.T, pIdeal units.Watts) *VDEBController {
	t.Helper()
	c, err := NewVDEBController(pIdeal)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func sumW(ws []units.Watts) units.Watts {
	var s units.Watts
	for _, w := range ws {
		s += w
	}
	return s
}

func TestVDEBControllerValidation(t *testing.T) {
	if _, err := NewVDEBController(0); err == nil {
		t.Error("zero Pideal should fail")
	}
	if _, err := NewVDEBController(-5); err == nil {
		t.Error("negative Pideal should fail")
	}
}

func TestAllocateProportionalToSOC(t *testing.T) {
	c := mustController(t, 1000)
	socs := []float64{0.8, 0.4, 0.2} // no cap binds for small demand
	out := c.Allocate(socs, 700)
	// Proportional: 0.8/1.4, 0.4/1.4, 0.2/1.4 of 700.
	want := []float64{400, 200, 100}
	for i, w := range want {
		if math.Abs(float64(out[i])-w) > 1e-9 {
			t.Errorf("alloc[%d] = %v, want %v", i, out[i], w)
		}
	}
}

func TestAllocateConservesTotal(t *testing.T) {
	c := mustController(t, 500)
	socs := []float64{0.9, 0.7, 0.1, 0.05}
	for _, demand := range []units.Watts{100, 400, 900, 1500, 1999} {
		out := c.Allocate(socs, demand)
		want := demand
		if cap_ := units.Watts(len(socs)) * 500; want > cap_ {
			want = cap_
		}
		if got := sumW(out); math.Abs(float64(got-want)) > 1e-6 {
			t.Errorf("demand %v: total = %v, want %v", demand, got, want)
		}
	}
}

func TestAllocateRespectsPIdealCap(t *testing.T) {
	c := mustController(t, 300)
	socs := []float64{0.95, 0.1, 0.1}
	// Proportional share of rack 0 would be 0.95/1.15×800 ≈ 660 > 300.
	out := c.Allocate(socs, 800)
	if out[0] != 300 {
		t.Fatalf("high-SOC rack alloc = %v, want capped 300", out[0])
	}
	// Remaining 500 split between the two 0.1 racks — also capped at 300.
	for i := 1; i < 3; i++ {
		if out[i] > 300+1e-9 {
			t.Errorf("rack %d alloc %v exceeds Pideal", i, out[i])
		}
	}
	if got := sumW(out); math.Abs(float64(got-800)) > 1e-6 {
		t.Fatalf("total = %v, want 800", got)
	}
}

func TestAllocateSaturatedPoolEvenUsage(t *testing.T) {
	c := mustController(t, 200)
	socs := []float64{0.9, 0.5, 0.1}
	out := c.Allocate(socs, 10_000) // >> 3×200
	for i, w := range out {
		if w != 200 {
			t.Errorf("saturated alloc[%d] = %v, want even 200", i, w)
		}
	}
}

func TestAllocateProtectsDrainedRacks(t *testing.T) {
	c := mustController(t, 1000)
	socs := []float64{0.9, 0.9, 0.0}
	out := c.Allocate(socs, 1000)
	if out[2] != 0 {
		t.Fatalf("drained rack assigned %v, want 0", out[2])
	}
	// Low-SOC racks always discharge no more than high-SOC racks.
	socs = []float64{0.9, 0.3, 0.6}
	out = c.Allocate(socs, 900)
	if !(out[0] >= out[2] && out[2] >= out[1]) {
		t.Fatalf("allocation not SOC-ordered: %v for socs %v", out, socs)
	}
}

func TestAllocateZeroCases(t *testing.T) {
	c := mustController(t, 100)
	if out := c.Allocate(nil, 100); len(out) != 0 {
		t.Error("no racks should return empty allocation")
	}
	out := c.Allocate([]float64{0.5, 0.5}, 0)
	if sumW(out) != 0 {
		t.Error("zero demand should allocate nothing")
	}
	out = c.Allocate([]float64{0.5, 0.5}, -100)
	if sumW(out) != 0 {
		t.Error("negative demand should allocate nothing")
	}
	// All racks empty but demand positive (and below saturation): nothing
	// to give.
	out = c.Allocate([]float64{0, 0, 0}, 100)
	if sumW(out) != 0 {
		t.Errorf("empty pool allocated %v", sumW(out))
	}
}

func TestAllocatePropertyInvariants(t *testing.T) {
	c := mustController(t, 250)
	f := func(raw []uint8, demandRaw uint16) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 64 {
			raw = raw[:64]
		}
		socs := make([]float64, len(raw))
		for i, r := range raw {
			socs[i] = float64(r) / 255
		}
		demand := units.Watts(demandRaw)
		out := c.Allocate(socs, demand)
		var total units.Watts
		for i, w := range out {
			if w < 0 || w > 250+1e-9 {
				return false
			}
			if socs[i] == 0 && w > 0 && demand < 250*units.Watts(len(socs)) {
				return false
			}
			total += w
		}
		want := demand
		if cap_ := 250 * units.Watts(len(socs)); want > cap_ {
			want = cap_
		}
		return math.Abs(float64(total-want)) < 1e-6 || total <= want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAllocateBalancesSOCOverTime(t *testing.T) {
	// Closed loop: repeatedly allocate and drain a simulated pool; the
	// SOC spread must shrink (the Figure 13 effect).
	c := mustController(t, 400)
	socs := []float64{1.0, 0.8, 0.5, 0.2}
	energy := 100_000.0 // joules per unit SOC
	spread0 := stats.StdDev(socs)
	for step := 0; step < 200; step++ {
		out := c.Allocate(socs, 600)
		for i, w := range out {
			socs[i] -= float64(w) * 1.0 / energy // 1 s ticks
			if socs[i] < 0 {
				socs[i] = 0
			}
		}
	}
	spread1 := stats.StdDev(socs)
	if spread1 >= spread0*0.6 {
		t.Fatalf("SOC spread did not shrink: %v -> %v", spread0, spread1)
	}
}

func TestPoolSOC(t *testing.T) {
	if got := PoolSOC(nil); got != 0 {
		t.Errorf("PoolSOC(nil) = %v", got)
	}
	if got := PoolSOC([]float64{0.2, 0.6}); math.Abs(got-0.4) > 1e-12 {
		t.Errorf("PoolSOC = %v, want 0.4", got)
	}
}
