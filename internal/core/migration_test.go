package core

import (
	"testing"
	"testing/quick"

	"repro/internal/units"
)

func mustMigrator(t *testing.T, max units.Watts) *Migrator {
	t.Helper()
	m, err := NewMigrator(max)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMigratorValidation(t *testing.T) {
	if _, err := NewMigrator(0); err == nil {
		t.Error("zero max move should fail")
	}
	if _, err := NewMigrator(-5); err == nil {
		t.Error("negative max move should fail")
	}
}

func TestPlanRelievesOverBudgetRack(t *testing.T) {
	m := mustMigrator(t, 1000)
	racks := []RackLoad{
		{Demand: 4500, Budget: 4000, SOC: 0.1}, // vulnerable, 500 over
		{Demand: 3000, Budget: 4000, SOC: 0.9}, // healthy sink
	}
	moves := m.Plan(racks)
	if len(moves) != 1 {
		t.Fatalf("moves = %v", moves)
	}
	if moves[0].From != 0 || moves[0].To != 1 || moves[0].Power != 500 {
		t.Fatalf("move = %+v", moves[0])
	}
	after := Apply(racks, moves)
	if after[0] != 4000 {
		t.Fatalf("source after = %v, want at budget", after[0])
	}
	if after[1] != 3500 {
		t.Fatalf("sink after = %v", after[1])
	}
}

func TestPlanRespectsHeadroomKeep(t *testing.T) {
	m := mustMigrator(t, 10_000)
	racks := []RackLoad{
		{Demand: 5000, Budget: 4000, SOC: 0.1}, // 1000 over
		{Demand: 3900, Budget: 4000, SOC: 0.9}, // only 100 headroom; 80 usable
	}
	moves := m.Plan(racks)
	var total units.Watts
	for _, mv := range moves {
		total += mv.Power
	}
	if total > 80+1e-9 {
		t.Fatalf("moved %v, destination safety margin violated", total)
	}
}

func TestPlanRespectsMaxMove(t *testing.T) {
	m := mustMigrator(t, 300)
	racks := []RackLoad{
		{Demand: 5000, Budget: 4000, SOC: 0.1},
		{Demand: 1000, Budget: 4000, SOC: 0.9},
	}
	moves := m.Plan(racks)
	var fromZero units.Watts
	for _, mv := range moves {
		if mv.From == 0 {
			fromZero += mv.Power
		}
	}
	if fromZero > 300 {
		t.Fatalf("moved %v off rack 0, cap is 300", fromZero)
	}
}

func TestPlanVulnerableFirstAndHealthiestSink(t *testing.T) {
	m := mustMigrator(t, 10_000)
	racks := []RackLoad{
		{Demand: 4100, Budget: 4000, SOC: 0.8},  // mildly over, healthy
		{Demand: 4100, Budget: 4000, SOC: 0.05}, // mildly over, vulnerable
		{Demand: 3990, Budget: 4000, SOC: 0.5},  // tiny sink
		{Demand: 3000, Budget: 4000, SOC: 0.95}, // big healthy sink
	}
	moves := m.Plan(racks)
	if len(moves) == 0 {
		t.Fatal("no moves planned")
	}
	if moves[0].From != 1 {
		t.Fatalf("first move should relieve the vulnerable rack, got %+v", moves[0])
	}
	if moves[0].To != 3 {
		t.Fatalf("first move should use the healthiest sink, got %+v", moves[0])
	}
}

func TestPlanSplitsAcrossSinks(t *testing.T) {
	m := mustMigrator(t, 10_000)
	racks := []RackLoad{
		{Demand: 5000, Budget: 4000, SOC: 0.1},  // 1000 over
		{Demand: 3500, Budget: 4000, SOC: 0.9},  // 400 usable
		{Demand: 3500, Budget: 4000, SOC: 0.85}, // 400 usable
	}
	moves := m.Plan(racks)
	if len(moves) != 2 {
		t.Fatalf("want a split across two sinks, got %v", moves)
	}
	var total units.Watts
	for _, mv := range moves {
		total += mv.Power
	}
	if total != 800 {
		t.Fatalf("moved %v, want all 800 of usable headroom", total)
	}
}

func TestPlanNoMovesWhenBalanced(t *testing.T) {
	m := mustMigrator(t, 1000)
	racks := []RackLoad{
		{Demand: 3500, Budget: 4000, SOC: 0.5},
		{Demand: 3600, Budget: 4000, SOC: 0.6},
	}
	if moves := m.Plan(racks); len(moves) != 0 {
		t.Fatalf("balanced cluster planned %v", moves)
	}
	if moves := m.Plan(nil); len(moves) != 0 {
		t.Fatal("empty cluster planned moves")
	}
}

func TestPlanPropertyConservationAndBounds(t *testing.T) {
	m := mustMigrator(t, 500)
	f := func(demRaw, socRaw []uint8) bool {
		n := len(demRaw)
		if n == 0 {
			return true
		}
		if n > 16 {
			n = 16
		}
		racks := make([]RackLoad, n)
		for i := 0; i < n; i++ {
			soc := 0.5
			if len(socRaw) > 0 {
				soc = float64(socRaw[i%len(socRaw)]) / 255
			}
			racks[i] = RackLoad{
				Demand: units.Watts(3000 + 10*int(demRaw[i])),
				Budget: 4000,
				SOC:    soc,
			}
		}
		moves := m.Plan(racks)
		after := Apply(racks, moves)
		var before, afterSum units.Watts
		for i, r := range racks {
			before += r.Demand
			afterSum += after[i]
			// No rack pushed over budget by inbound migration.
			if after[i] > r.Demand && after[i] > r.Budget {
				return false
			}
			// Sources never relieved below their budget.
			if r.Demand > r.Budget && after[i] < r.Budget-1e-9 {
				return false
			}
		}
		// Load is conserved.
		return afterSum-before < 1e-6 && before-afterSum < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestApplyIgnoresOutOfRangeMoves(t *testing.T) {
	racks := []RackLoad{{Demand: 100, Budget: 200}}
	after := Apply(racks, []Move{{From: 5, To: 0, Power: 50}, {From: 0, To: -1, Power: 50}})
	if after[0] != 100 {
		t.Fatalf("out-of-range moves mutated demand: %v", after[0])
	}
}
