package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/core/policytest"
)

// TestPolicyCanonicalTimeline walks every Figure-9 transition edge and
// hysteresis hold through the shared canonical timeline.
func TestPolicyCanonicalTimeline(t *testing.T) {
	for _, strict := range []bool{false, true} {
		name := "lax"
		if strict {
			name = "strict"
		}
		t.Run(name, func(t *testing.T) {
			// Both backups full initially → Level 1 in either mode.
			p := core.NewPolicy(strict, core.PolicyInputs{VDEBSOC: 0.95, MicroSOC: 0.95})
			if p.Level() != core.Level1 {
				t.Fatalf("initial level %v, want L1", p.Level())
			}
			policytest.Run(t, p.Step)
		})
	}
}

// TestPolicyInitialTable pins Figure 9's initial-state table over
// (vDEB>0, μDEB>0, VP>0), including the two rows the paper leaves to
// the organization's security requirement.
func TestPolicyInitialTable(t *testing.T) {
	full, low := 0.95, 0.02
	cases := []struct {
		name        string
		in          core.PolicyInputs
		lax, strict core.Level
	}{
		{"000 both empty", core.PolicyInputs{VDEBSOC: low, MicroSOC: low}, core.Level3, core.Level3},
		{"001 both empty, peak", core.PolicyInputs{VDEBSOC: low, MicroSOC: low, VisiblePeak: true}, core.Level3, core.Level3},
		{"010 only uDEB", core.PolicyInputs{VDEBSOC: low, MicroSOC: full}, core.Level2, core.Level2},
		{"011 only uDEB, peak", core.PolicyInputs{VDEBSOC: low, MicroSOC: full, VisiblePeak: true}, core.Level3, core.Level3},
		{"100 only vDEB", core.PolicyInputs{VDEBSOC: full, MicroSOC: low}, core.Level1, core.Level2},
		{"101 only vDEB, peak", core.PolicyInputs{VDEBSOC: full, MicroSOC: low, VisiblePeak: true}, core.Level1, core.Level2},
		{"110 both full", core.PolicyInputs{VDEBSOC: full, MicroSOC: full}, core.Level1, core.Level1},
		{"111 both full, peak", core.PolicyInputs{VDEBSOC: full, MicroSOC: full, VisiblePeak: true}, core.Level1, core.Level1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := core.NewPolicy(false, tc.in).Level(); got != tc.lax {
				t.Errorf("lax: %v, want %v", got, tc.lax)
			}
			if got := core.NewPolicy(true, tc.in).Level(); got != tc.strict {
				t.Errorf("strict: %v, want %v", got, tc.strict)
			}
		})
	}
}
