package core

import (
	"fmt"
	"time"

	"repro/internal/battery"
	"repro/internal/units"
)

// MicroDEB is the μDEB spike shaver: a small super-capacitor bank hanging
// off the rack power bus behind an ORing FET. The ORing conducts — with
// no software in the loop — whenever the rack draw pulls the bus above
// the conduction threshold, so sub-second spikes that no utilization
// monitor can see are shaved automatically. Between spikes the bank
// trickle-charges from budget headroom.
type MicroDEB struct {
	bank *battery.SuperCap
	// threshold is the draw above which the ORing conducts (the rack's
	// power budget).
	threshold units.Watts
	// shavedEnergy accumulates the energy delivered into spikes.
	shavedEnergy units.Joules
	// interventions counts ticks where the μDEB conducted.
	interventions int
}

// NewMicroDEB builds a spike shaver with the given super-capacitor bank
// and conduction threshold.
func NewMicroDEB(bank *battery.SuperCap, threshold units.Watts) (*MicroDEB, error) {
	if bank == nil {
		return nil, fmt.Errorf("core: μDEB needs a super-capacitor bank")
	}
	if threshold <= 0 {
		return nil, fmt.Errorf("core: μDEB threshold must be positive, got %v", threshold)
	}
	return &MicroDEB{bank: bank, threshold: threshold}, nil
}

// SetThreshold re-points the conduction threshold (the rack budget can
// move when the vDEB controller reassigns soft limits).
func (u *MicroDEB) SetThreshold(t units.Watts) {
	if t > 0 {
		u.threshold = t
	}
}

// Threshold returns the current conduction threshold.
func (u *MicroDEB) Threshold() units.Watts { return u.threshold }

// Shave passes a tick of rack draw through the ORing: any excess above
// the threshold is served from the bank (up to its power and energy
// limits). It returns the grid draw after shaving.
func (u *MicroDEB) Shave(draw units.Watts, dt time.Duration) units.Watts {
	excess := draw - u.threshold
	if excess <= 0 {
		return draw
	}
	got := u.bank.Discharge(excess, dt)
	if got > 0 {
		u.shavedEnergy += got.Energy(dt)
		u.interventions++
	}
	return draw - got
}

// Recharge offers the bank headroom power for a tick and returns what it
// accepted.
func (u *MicroDEB) Recharge(headroom units.Watts, dt time.Duration) units.Watts {
	if headroom <= 0 {
		return 0
	}
	return u.bank.Charge(headroom, dt)
}

// AtRest reports that one tick of dt cannot change the μDEB: the bank
// is full, so Recharge accepts nothing, and a Shave below the threshold
// is a pure pass-through. The quiescent-skip engine separately verifies
// the rack's draw sits below the conduction threshold (no shaving
// happened on the last identical tick).
func (u *MicroDEB) AtRest(dt time.Duration) bool { return u.bank.AtRest(dt) }

// SOC returns the bank's state of charge, the "μDEB level" input of the
// security policy.
func (u *MicroDEB) SOC() float64 { return u.bank.SOC() }

// ShavedEnergy reports the cumulative energy delivered into spikes.
func (u *MicroDEB) ShavedEnergy() units.Joules { return u.shavedEnergy }

// Interventions reports how many ticks the ORing conducted.
func (u *MicroDEB) Interventions() int { return u.interventions }

// Capacity returns the bank's energy capacity.
func (u *MicroDEB) Capacity() units.Joules { return u.bank.Capacity() }
