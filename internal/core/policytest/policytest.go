// Package policytest exports the canonical security-policy transition
// timeline: a table of inputs and expected levels that walks every
// Figure-9 edge (L1→L2, L2→L3, L3→L2, L2→L1, L3→L1) and pins the
// hysteresis band in between, where the level must hold. It lives in
// its own package so both the core unit test and the padd online test
// drive the exact same sequence.
package policytest

import (
	"testing"

	"repro/internal/core"
)

// Step is one tick of the canonical timeline.
type Step struct {
	// Name says which edge or hold this step exercises.
	Name string
	// In is the tick's policy inputs.
	In core.PolicyInputs
	// Want is the level after the tick.
	Want core.Level
}

// Timeline returns the canonical transition walk. It assumes the
// default thresholds (empty at SOC ≤ 0.05, recharged above 0.30) and an
// initial state with both backups full (Level 1 regardless of
// StrictInitial).
func Timeline() []Step {
	full := 0.95
	mid := 0.20 // inside the hysteresis band: neither empty nor recharged
	low := 0.02 // empty
	re := 0.40  // recharged
	return []Step{
		// L1 holds while the vDEB pool is merely low, not empty.
		{"L1 hold (vDEB in band)", core.PolicyInputs{VDEBSOC: mid, MicroSOC: full, VisiblePeak: true}, core.Level1},
		{"L1 hold (vDEB just above empty)", core.PolicyInputs{VDEBSOC: 0.06, MicroSOC: full}, core.Level1},
		// L1 → L2: the vDEB pool empties.
		{"L1→L2 (vDEB empty)", core.PolicyInputs{VDEBSOC: low, MicroSOC: full}, core.Level2},
		// L2 holds across the hysteresis band: vDEB back above empty but
		// not yet recharged must NOT bounce to L1.
		{"L2 hold (vDEB in band)", core.PolicyInputs{VDEBSOC: mid, MicroSOC: full}, core.Level2},
		{"L2 hold (vDEB at recharge threshold)", core.PolicyInputs{VDEBSOC: 0.30, MicroSOC: full}, core.Level2},
		// L2 → L1: the vDEB pool recharges past the threshold.
		{"L2→L1 (vDEB recharged)", core.PolicyInputs{VDEBSOC: re, MicroSOC: full}, core.Level1},
		// Down again, then deeper: L2 → L3 when the μDEB also empties.
		{"L1→L2 (vDEB empty again)", core.PolicyInputs{VDEBSOC: low, MicroSOC: full}, core.Level2},
		{"L2→L3 (μDEB empty)", core.PolicyInputs{VDEBSOC: low, MicroSOC: low}, core.Level3},
		// L3 holds across the μDEB hysteresis band.
		{"L3 hold (μDEB in band)", core.PolicyInputs{VDEBSOC: low, MicroSOC: mid}, core.Level3},
		// L3 → L2: μDEB recharged while the vDEB pool is still down.
		{"L3→L2 (μDEB recharged, vDEB low)", core.PolicyInputs{VDEBSOC: mid, MicroSOC: re}, core.Level2},
		// Back to L3, then straight to L1 when both backups recover.
		{"L2→L3 (μDEB empty again)", core.PolicyInputs{VDEBSOC: low, MicroSOC: low}, core.Level3},
		{"L3→L1 (both recharged)", core.PolicyInputs{VDEBSOC: re, MicroSOC: re}, core.Level1},
		// A visible peak alone never changes the level.
		{"L1 hold (visible peak, backups full)", core.PolicyInputs{VDEBSOC: full, MicroSOC: full, VisiblePeak: true}, core.Level1},
	}
}

// Run drives step through the canonical timeline, failing t on the
// first level that deviates. step is one tick of whatever policy
// implementation is under test.
func Run(t testing.TB, step func(core.PolicyInputs) core.Level) {
	t.Helper()
	for i, s := range Timeline() {
		if got := step(s.In); got != s.Want {
			t.Fatalf("step %d (%s): level %v, want %v", i, s.Name, got, s.Want)
		}
	}
}
