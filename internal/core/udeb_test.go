package core

import (
	"testing"
	"time"

	"repro/internal/battery"
	"repro/internal/units"
)

func newTestMicroDEB(t *testing.T, capJ units.Joules, threshold units.Watts) *MicroDEB {
	t.Helper()
	bank := battery.MustSuperCap(battery.SuperCapConfig{
		Capacity: capJ,
		MaxPower: 1e6,
	})
	u, err := NewMicroDEB(bank, threshold)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func TestMicroDEBValidation(t *testing.T) {
	if _, err := NewMicroDEB(nil, 100); err == nil {
		t.Error("nil bank should fail")
	}
	bank := battery.MustSuperCap(battery.SuperCapConfig{Capacity: 100})
	if _, err := NewMicroDEB(bank, 0); err == nil {
		t.Error("zero threshold should fail")
	}
}

func TestMicroDEBShavesExcessOnly(t *testing.T) {
	u := newTestMicroDEB(t, 10_000, 5000)
	// Under threshold: pass-through, no conduction.
	if got := u.Shave(4000, time.Second); got != 4000 {
		t.Fatalf("under-threshold draw changed: %v", got)
	}
	if u.Interventions() != 0 {
		t.Fatal("ORing conducted under threshold")
	}
	// Over threshold: grid draw clamps to the threshold.
	if got := u.Shave(5600, time.Second); got != 5000 {
		t.Fatalf("shaved draw = %v, want 5000", got)
	}
	if u.Interventions() != 1 {
		t.Fatalf("interventions = %d", u.Interventions())
	}
	if u.ShavedEnergy() != 600 {
		t.Fatalf("shaved energy = %v, want 600 J", u.ShavedEnergy())
	}
}

func TestMicroDEBExhaustion(t *testing.T) {
	u := newTestMicroDEB(t, 1200, 5000) // 1200 J: two seconds of 600 W excess
	if got := u.Shave(5600, time.Second); got != 5000 {
		t.Fatalf("first second: %v", got)
	}
	if got := u.Shave(5600, time.Second); got != 5000 {
		t.Fatalf("second second: %v", got)
	}
	// Bank is empty: the spike passes through.
	if got := u.Shave(5600, time.Second); got != 5600 {
		t.Fatalf("empty bank should pass the spike, got %v", got)
	}
	if u.SOC() > 1e-9 {
		t.Fatalf("SOC = %v, want 0", u.SOC())
	}
}

func TestMicroDEBRecharge(t *testing.T) {
	u := newTestMicroDEB(t, 1000, 5000)
	u.Shave(6000, time.Second) // drain fully
	if u.SOC() > 1e-9 {
		t.Fatal("bank should be empty")
	}
	accepted := u.Recharge(500, time.Second)
	if accepted <= 0 {
		t.Fatal("recharge accepted nothing")
	}
	if u.SOC() <= 0 {
		t.Fatal("SOC did not rise")
	}
	if got := u.Recharge(0, time.Second); got != 0 {
		t.Fatal("zero headroom should charge nothing")
	}
	if got := u.Recharge(-10, time.Second); got != 0 {
		t.Fatal("negative headroom should charge nothing")
	}
}

func TestMicroDEBThresholdUpdate(t *testing.T) {
	u := newTestMicroDEB(t, 10_000, 5000)
	u.SetThreshold(4000)
	if u.Threshold() != 4000 {
		t.Fatal("threshold not updated")
	}
	if got := u.Shave(4500, time.Second); got != 4000 {
		t.Fatalf("shave after update = %v, want 4000", got)
	}
	u.SetThreshold(0) // ignored
	if u.Threshold() != 4000 {
		t.Fatal("non-positive threshold should be ignored")
	}
}

func TestMicroDEBPartialShaveWhenPowerLimited(t *testing.T) {
	bank := battery.MustSuperCap(battery.SuperCapConfig{
		Capacity: 1e6,
		MaxPower: 200, // can only source 200 W
	})
	u, err := NewMicroDEB(bank, 5000)
	if err != nil {
		t.Fatal(err)
	}
	got := u.Shave(5600, time.Second)
	if got != 5400 {
		t.Fatalf("power-limited shave = %v, want 5400", got)
	}
}

func TestMicroDEBCapacity(t *testing.T) {
	u := newTestMicroDEB(t, 1260, 5000)
	if u.Capacity() != 1260 {
		t.Fatalf("Capacity = %v", u.Capacity())
	}
}
