package core

import (
	"fmt"
	"sort"

	"repro/internal/units"
)

// Migrator plans Level-3 load migration, the alternative the paper names
// alongside shedding: "trigger load migration from vulnerable racks to
// dependable racks". It moves power (VM load) from racks whose demand
// exceeds their budget — most vulnerable (lowest battery SOC) first —
// onto racks with both budget headroom and healthy batteries.
type Migrator struct {
	// MaxMovePerRack bounds how much load may leave one rack in a single
	// plan (migration bandwidth is finite).
	MaxMovePerRack units.Watts
	// HeadroomKeep is the fraction of a destination's headroom to leave
	// untouched as safety margin. 0 selects 0.2.
	HeadroomKeep float64
}

// NewMigrator builds a planner.
func NewMigrator(maxMovePerRack units.Watts) (*Migrator, error) {
	if maxMovePerRack <= 0 {
		return nil, fmt.Errorf("core: max move per rack must be positive, got %v", maxMovePerRack)
	}
	return &Migrator{MaxMovePerRack: maxMovePerRack, HeadroomKeep: 0.2}, nil
}

// Move is one planned migration.
type Move struct {
	// From and To are rack indices.
	From, To int
	// Power is the load moved.
	Power units.Watts
}

// RackLoad describes one rack for planning.
type RackLoad struct {
	// Demand is the rack's electrical demand.
	Demand units.Watts
	// Budget is its power budget.
	Budget units.Watts
	// SOC is its battery state of charge.
	SOC float64
}

// Plan returns migrations that relieve over-budget racks using
// under-budget racks' headroom. Sources are ordered most-vulnerable
// first; destinations healthiest (highest SOC) first. Every move
// satisfies:
//
//   - the source was over budget and is relieved by at most its excess
//     (and at most MaxMovePerRack in total),
//   - the destination stays under (1−HeadroomKeep) of its headroom.
func (m *Migrator) Plan(racks []RackLoad) []Move {
	type end struct {
		idx    int
		amount units.Watts
	}
	var sources, sinks []end
	for i, r := range racks {
		if excess := r.Demand - r.Budget; excess > 0 {
			sources = append(sources, end{i, units.Min(excess, m.MaxMovePerRack)})
		} else if head := r.Budget - r.Demand; head > 0 {
			usable := units.Watts(float64(head) * (1 - m.headroomKeep()))
			if usable > 0 {
				sinks = append(sinks, end{i, usable})
			}
		}
	}
	sort.SliceStable(sources, func(a, b int) bool {
		return racks[sources[a].idx].SOC < racks[sources[b].idx].SOC
	})
	sort.SliceStable(sinks, func(a, b int) bool {
		return racks[sinks[a].idx].SOC > racks[sinks[b].idx].SOC
	})
	var moves []Move
	si := 0
	for _, src := range sources {
		remaining := src.amount
		for remaining > 0 && si < len(sinks) {
			take := units.Min(remaining, sinks[si].amount)
			if take > 0 {
				moves = append(moves, Move{From: src.idx, To: sinks[si].idx, Power: take})
				remaining -= take
				sinks[si].amount -= take
			}
			if sinks[si].amount <= 0 {
				si++
			}
		}
		if si >= len(sinks) {
			break
		}
	}
	return moves
}

func (m *Migrator) headroomKeep() float64 {
	if m.HeadroomKeep == 0 {
		return 0.2
	}
	return m.HeadroomKeep
}

// Apply returns the per-rack demand after executing the moves (a helper
// for planners and tests; the simulator applies moves through its own
// load model).
func Apply(racks []RackLoad, moves []Move) []units.Watts {
	out := make([]units.Watts, len(racks))
	for i, r := range racks {
		out[i] = r.Demand
	}
	for _, mv := range moves {
		if mv.From >= 0 && mv.From < len(out) && mv.To >= 0 && mv.To < len(out) {
			out[mv.From] -= mv.Power
			out[mv.To] += mv.Power
		}
	}
	return out
}
