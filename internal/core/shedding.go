package core

import (
	"fmt"

	"repro/internal/units"
)

// Shedder plans emergency load shedding: in Level 3, PAD puts a small
// number of low-priority servers to sleep to erase the power shortfall
// and let batteries recover. The paper's Figure 14 shows that shedding
// under 3% of servers flattens the battery-usage map under cluster-wide
// surges.
type Shedder struct {
	// MaxRatio is the largest fraction of the cluster's servers that may
	// be shed simultaneously. 0 selects 0.03.
	MaxRatio float64
	// PerServerSaving is the power recovered by sleeping one server
	// (active power minus sleep power).
	PerServerSaving units.Watts

	// counts and order are reusable scratch: PAD calls Plan every tick
	// while shedding is engaged, and the engine's hot loop is supposed to
	// be allocation-free in steady state (gated by benchcheck
	// -zero-allocs on BenchmarkStepperTick).
	counts []int
	order  []int
}

// NewShedder builds a shedding planner.
func NewShedder(maxRatio float64, perServerSaving units.Watts) (*Shedder, error) {
	if maxRatio == 0 {
		maxRatio = 0.03
	}
	if maxRatio < 0 || maxRatio > 1 {
		return nil, fmt.Errorf("core: shed ratio %v out of [0,1]", maxRatio)
	}
	if perServerSaving <= 0 {
		return nil, fmt.Errorf("core: per-server saving must be positive, got %v", perServerSaving)
	}
	return &Shedder{MaxRatio: maxRatio, PerServerSaving: perServerSaving}, nil
}

// Plan decides how many servers to shed in each rack to recover at least
// shortfall watts, never exceeding MaxRatio of totalServers overall.
// Racks are drained vulnerable-first (lowest battery SOC first), because
// sleeping servers on a vulnerable rack both frees budget and disrupts
// any attacker resident there. serversPerRack bounds each rack's
// contribution.
//
// It returns the per-rack shed counts and the total power recovered.
// The counts slice is scratch owned by the Shedder: it stays valid only
// until the next Plan call.
func (s *Shedder) Plan(shortfall units.Watts, socs []float64, serversPerRack, totalServers int) ([]int, units.Watts) {
	n := len(socs)
	if cap(s.counts) < n {
		s.counts = make([]int, n)
		s.order = make([]int, n)
	}
	counts := s.counts[:n]
	for i := range counts {
		counts[i] = 0
	}
	if shortfall <= 0 || n == 0 || serversPerRack <= 0 || totalServers <= 0 {
		return counts, 0
	}
	budget := int(s.maxRatio() * float64(totalServers))
	if budget == 0 {
		return counts, 0
	}
	order := s.order[:n]
	for i := range order {
		order[i] = i
	}
	// Stable insertion sort, vulnerable (lowest SOC) first: the rack
	// count is small, and unlike sort.SliceStable this allocates nothing.
	for i := 1; i < n; i++ {
		for j := i; j > 0 && socs[order[j]] < socs[order[j-1]]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	var recovered units.Watts
	shed := 0
	for _, idx := range order {
		for counts[idx] < serversPerRack && shed < budget && recovered < shortfall {
			counts[idx]++
			shed++
			recovered += s.PerServerSaving
		}
		if shed >= budget || recovered >= shortfall {
			break
		}
	}
	return counts, recovered
}

func (s *Shedder) maxRatio() float64 {
	if s.MaxRatio == 0 {
		return 0.03
	}
	return s.MaxRatio
}
