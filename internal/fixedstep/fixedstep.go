// Package fixedstep is the fixed-timestep kernel layer: tiny single-slot
// caches for coefficients that depend only on the step duration. A
// simulation run advances with one constant tick, yet several models used
// to re-derive transcendental per-dt factors (exp/sqrt/pow of the tick)
// on every step — the KiBaM well-coupling terms, breaker cooling, EWMA
// alphas, metering noise sigma. Hoisting those out of the hot loop is the
// classic fixed-timestep-simulator discipline: compute each coefficient
// once per (instance, dt) and reuse the identical bits until the step
// changes.
//
// The caches are deliberately single-slot (last dt wins) rather than
// maps: within one run dt never changes, so a slot hits on every tick
// after the first, costs one comparison, and needs no eviction or
// locking. Instances that are stepped with alternating durations simply
// recompute — correctness never depends on a hit, only speed does.
//
// Bit-identity contract: a cached coefficient must hold exactly the value
// the direct formula would produce — callers recompute the same
// expression, store it, and reuse it verbatim, so cached and uncached
// paths are indistinguishable to the float64 bit. Tests that pin golden
// CSVs rely on this.
//
// Concurrency: a Key (like the models embedding it) is confined to one
// goroutine; see the sim package's concurrency contract.
package fixedstep

import "time"

// Key is the cache key of a single-slot per-dt coefficient cache. The
// zero value is an empty cache.
type Key struct {
	dt    time.Duration
	valid bool
}

// Hit reports whether coefficients cached for dt are still valid, and
// records dt as the new cached key when they are not. Callers recompute
// and store their coefficients exactly when Hit reports false:
//
//	if !b.coefKey.Hit(dt) {
//		b.coef = expensiveCoefficients(dt)
//	}
//	// use b.coef
func (k *Key) Hit(dt time.Duration) bool {
	if k.valid && k.dt == dt {
		return true
	}
	k.dt = dt
	k.valid = true
	return false
}

// Invalidate empties the cache: the next Hit reports false regardless of
// dt. Models whose non-dt parameters can change between steps (e.g. a
// breaker's cooling constant) call this when such a parameter moves.
func (k *Key) Invalidate() {
	k.valid = false
}

// Valid reports whether the cache currently holds coefficients for some
// dt (diagnostics and tests).
func (k *Key) Valid() bool { return k.valid }
