package fixedstep

import (
	"testing"
	"time"
)

func TestKeyZeroValueMisses(t *testing.T) {
	var k Key
	if k.Valid() {
		t.Fatal("zero Key reports valid")
	}
	if k.Hit(100 * time.Millisecond) {
		t.Fatal("first Hit reported a cache hit")
	}
	if !k.Valid() {
		t.Fatal("Key not valid after first Hit")
	}
}

func TestKeyHitsOnSameDt(t *testing.T) {
	var k Key
	k.Hit(time.Second)
	for i := 0; i < 3; i++ {
		if !k.Hit(time.Second) {
			t.Fatalf("Hit %d missed on unchanged dt", i)
		}
	}
}

func TestKeyMissesOnDtChange(t *testing.T) {
	var k Key
	k.Hit(time.Second)
	if k.Hit(2 * time.Second) {
		t.Fatal("Hit reported stale coefficients valid after dt change")
	}
	if !k.Hit(2 * time.Second) {
		t.Fatal("Hit missed after rekeying to the new dt")
	}
	// Alternating durations never falsely hit.
	if k.Hit(time.Second) {
		t.Fatal("Hit reported the evicted dt as cached")
	}
}

func TestKeyZeroDtIsARealKey(t *testing.T) {
	// dt == 0 must be distinguishable from the empty cache: models guard
	// dt <= 0 themselves, but the cache must not conflate "empty" with
	// "cached for 0".
	var k Key
	if k.Hit(0) {
		t.Fatal("empty cache hit for dt=0")
	}
	if !k.Hit(0) {
		t.Fatal("cache missed for the cached dt=0")
	}
}

func TestKeyInvalidate(t *testing.T) {
	var k Key
	k.Hit(time.Second)
	k.Invalidate()
	if k.Valid() {
		t.Fatal("Key valid after Invalidate")
	}
	if k.Hit(time.Second) {
		t.Fatal("Hit reported a hit after Invalidate")
	}
}
