// Package metering models the power-demand monitoring a data center can
// afford: meters that integrate energy over a configurable interval (from
// 5 seconds to 15 minutes in Table I) and a utilization-based anomaly
// detector that flags intervals whose average power stands out from the
// tracked baseline. The attacker's hidden spikes live or die by what
// these instruments can resolve.
//
// Concurrency: meters and detectors accumulate interval state and are not
// safe for concurrent use; create one per replay. The offline replays in
// internal/experiments run after the parallel sweep has collected its
// recordings, on the collecting goroutine.
package metering

import (
	"fmt"
	"math"
	"time"

	"repro/internal/stats"
	"repro/internal/units"
)

// IntervalReading is one completed metering interval.
type IntervalReading struct {
	// Start is the interval's start offset.
	Start time.Duration
	// Avg is the measured average power over the interval (including
	// measurement noise, if configured).
	Avg units.Watts
}

// Meter integrates instantaneous power into fixed-interval averages, the
// way utilization-based monitoring samples a rack. Optional Gaussian
// noise models sensor error and unmodeled background wander; its sigma is
// specified per 1-second sample and averages down as 1/√interval, so
// coarse meters are quieter but blinder.
type Meter struct {
	interval time.Duration
	noise1s  units.Watts
	sigma    float64 // per-interval noise sigma, derived once from noise1s
	rng      *stats.RNG

	energy  units.Joules
	into    time.Duration
	elapsed time.Duration
}

// NewMeter creates a meter with the given integration interval and
// per-1s-sample noise sigma (0 for an ideal meter).
func NewMeter(interval time.Duration, noise1s units.Watts, seed uint64) (*Meter, error) {
	if interval <= 0 {
		return nil, fmt.Errorf("metering: interval must be positive, got %v", interval)
	}
	if noise1s < 0 {
		return nil, fmt.Errorf("metering: noise sigma must be non-negative, got %v", noise1s)
	}
	return &Meter{
		interval: interval,
		noise1s:  noise1s,
		// The interval is immutable, so the 1/√interval averaging of the
		// per-1s sigma is a constant of the meter (fixed-timestep kernel
		// discipline): derive it once instead of one math.Sqrt per
		// completed interval.
		sigma: float64(noise1s) / math.Sqrt(interval.Seconds()),
		rng:   stats.NewRNG(seed).Split(0x3e7e6),
	}, nil
}

// Interval returns the meter's integration interval.
func (m *Meter) Interval() time.Duration { return m.interval }

// Record feeds the meter dt of load at power p and returns any intervals
// completed during the step (usually zero or one; more if dt spans
// multiple intervals, in which case the power is attributed uniformly).
func (m *Meter) Record(p units.Watts, dt time.Duration) []IntervalReading {
	var out []IntervalReading
	for dt > 0 {
		room := m.interval - m.into
		step := dt
		if step > room {
			step = room
		}
		m.energy += p.Energy(step)
		m.into += step
		m.elapsed += step
		dt -= step
		if m.into >= m.interval {
			avg := m.energy.Over(m.interval)
			if m.noise1s > 0 {
				avg += units.Watts(m.rng.Norm(0, m.sigma))
			}
			out = append(out, IntervalReading{
				Start: m.elapsed - m.interval,
				Avg:   avg,
			})
			m.energy = 0
			m.into = 0
		}
	}
	return out
}

// Detector flags metering intervals whose average power exceeds the
// tracked baseline by a relative threshold. The baseline adapts slowly
// (EWMA) so legitimate load drift is absorbed while short anomalies stand
// out; an attacker's low between-spike rest level is exactly what this
// adaptation eventually hides.
type Detector struct {
	// Threshold is the relative excess over baseline that triggers a
	// flag. Defaults to 0.01 (1%): fine-grained power monitoring can
	// resolve percent-level anomalies, per the paper's Table I setup.
	Threshold float64
	// Alpha is the baseline EWMA weight per interval. Defaults to 0.1:
	// fast enough that drift lag (drift-rate/Alpha) stays under the
	// threshold for realistic load drift, slow enough that a burst does
	// not instantly become the new normal.
	Alpha float64

	baseline    float64
	initialized bool
	flags       int
	observed    int
}

// NewDetector creates a detector with an initial baseline expectation
// (e.g. the pre-attack average rack power). A zero baseline makes the
// first observation the baseline.
func NewDetector(baseline units.Watts) *Detector {
	d := &Detector{Threshold: 0.01, Alpha: 0.1}
	if baseline > 0 {
		d.baseline = float64(baseline)
		d.initialized = true
	}
	return d
}

// Observe processes one interval reading and reports whether it is
// flagged as anomalous.
func (d *Detector) Observe(r IntervalReading) bool {
	d.observed++
	if !d.initialized {
		d.baseline = float64(r.Avg)
		d.initialized = true
		return false
	}
	flagged := float64(r.Avg) > d.baseline*(1+d.Threshold)
	if flagged {
		d.flags++
	} else {
		// Only un-flagged intervals train the baseline, so an ongoing
		// attack cannot teach the detector to accept its spikes.
		d.baseline += d.Alpha * (float64(r.Avg) - d.baseline)
	}
	return flagged
}

// Baseline returns the current baseline estimate.
func (d *Detector) Baseline() units.Watts { return units.Watts(d.baseline) }

// Flags returns how many intervals have been flagged.
func (d *Detector) Flags() int { return d.flags }

// Observed returns how many intervals have been processed.
func (d *Detector) Observed() int { return d.observed }

// DetectionRate computes the per-spike detection rate given the spike
// launch offsets and the flagged intervals: a spike is detected when the
// metering interval containing its start is flagged. This is the quantity
// Table I reports.
func DetectionRate(spikes []time.Duration, flagged []IntervalReading, interval time.Duration) float64 {
	if len(spikes) == 0 {
		return 0
	}
	flaggedIdx := make(map[int64]bool, len(flagged))
	for _, f := range flagged {
		flaggedIdx[int64(f.Start/interval)] = true
	}
	hit := 0
	for _, s := range spikes {
		if flaggedIdx[int64(s/interval)] {
			hit++
		}
	}
	return float64(hit) / float64(len(spikes))
}
