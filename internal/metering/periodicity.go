package metering

import (
	"math"

	"repro/internal/units"
)

// PeriodicityDetector hunts the one signature a disciplined spike train
// cannot hide from energy averages alone: its clock. It keeps a sliding
// window of baseline residuals and flags when their autocorrelation shows
// a strong repeating component — even if every individual interval stays
// under an amplitude threshold. An attacker can defeat it by randomizing
// spike timing (virus.Config.PhaseJitter), trading schedule regularity
// for stealth; the ablation experiments quantify that trade.
type PeriodicityDetector struct {
	// Window is the number of intervals analyzed. 0 selects 120.
	Window int
	// MinLag/MaxLag bound the searched periods in intervals. Zeros select
	// 2 and Window/3.
	MinLag, MaxLag int
	// Threshold is the normalized autocorrelation that triggers a flag.
	// 0 selects 0.4.
	Threshold float64
	// Alpha is the baseline EWMA weight. 0 selects 0.05.
	Alpha float64

	baseline    float64
	initialized bool
	residuals   []float64
	flags       int
	observed    int
	lastPeriod  int
}

// NewPeriodicityDetector creates a detector seeded with the expected
// baseline (0 lets the first observation seed it).
func NewPeriodicityDetector(baseline units.Watts) *PeriodicityDetector {
	d := &PeriodicityDetector{}
	if baseline > 0 {
		d.baseline = float64(baseline)
		d.initialized = true
	}
	return d
}

func (d *PeriodicityDetector) window() int {
	if d.Window == 0 {
		return 120
	}
	return d.Window
}

func (d *PeriodicityDetector) minLag() int {
	if d.MinLag == 0 {
		return 2
	}
	return d.MinLag
}

func (d *PeriodicityDetector) maxLag() int {
	if d.MaxLag == 0 {
		return d.window() / 3
	}
	return d.MaxLag
}

func (d *PeriodicityDetector) threshold() float64 {
	if d.Threshold == 0 {
		return 0.4
	}
	return d.Threshold
}

func (d *PeriodicityDetector) alpha() float64 {
	if d.Alpha == 0 {
		return 0.05
	}
	return d.Alpha
}

// Observe processes one interval reading and reports whether the window's
// residuals currently exhibit a periodic component.
func (d *PeriodicityDetector) Observe(r IntervalReading) bool {
	d.observed++
	if !d.initialized {
		d.baseline = float64(r.Avg)
		d.initialized = true
		return false
	}
	residual := float64(r.Avg) - d.baseline
	d.baseline += d.alpha() * residual
	d.residuals = append(d.residuals, residual)
	if len(d.residuals) > d.window() {
		d.residuals = d.residuals[1:]
	}
	if len(d.residuals) < d.window() {
		return false
	}
	lag, score := peakAutocorrelation(d.residuals, d.minLag(), d.maxLag())
	if score >= d.threshold() {
		d.flags++
		d.lastPeriod = lag
		return true
	}
	return false
}

// Flags reports how many windows were flagged periodic.
func (d *PeriodicityDetector) Flags() int { return d.flags }

// Observed reports how many intervals were processed.
func (d *PeriodicityDetector) Observed() int { return d.observed }

// DetectedPeriod reports the lag (in intervals) of the last flag, or 0.
func (d *PeriodicityDetector) DetectedPeriod() int { return d.lastPeriod }

// peakAutocorrelation returns the lag in [minLag, maxLag] with the highest
// normalized autocorrelation of xs, and that score.
func peakAutocorrelation(xs []float64, minLag, maxLag int) (bestLag int, bestScore float64) {
	n := len(xs)
	if maxLag >= n {
		maxLag = n - 1
	}
	mean := 0.0
	for _, x := range xs {
		mean += x
	}
	mean /= float64(n)
	var denom float64
	for _, x := range xs {
		d := x - mean
		denom += d * d
	}
	if denom == 0 {
		return 0, 0
	}
	for lag := minLag; lag <= maxLag; lag++ {
		var num float64
		for i := lag; i < n; i++ {
			num += (xs[i] - mean) * (xs[i-lag] - mean)
		}
		score := num / denom
		if score > bestScore {
			bestScore = score
			bestLag = lag
		}
	}
	if math.IsNaN(bestScore) {
		return 0, 0
	}
	return bestLag, bestScore
}
