package metering

import "repro/internal/units"

// CUSUMDetector is the sequential change-point alternative to the
// threshold Detector: it accumulates positive deviations from the
// baseline and flags when the cumulative sum crosses a decision level.
// Against power viruses it trades per-interval sensitivity for memory —
// a train of individually sub-threshold spikes still accumulates — at
// the cost of a detection delay. The ablation experiments compare the
// two.
type CUSUMDetector struct {
	// Slack is the per-interval allowance (as a fraction of baseline)
	// subtracted before accumulating; deviations smaller than this are
	// treated as noise. Defaults to 0.005.
	Slack float64
	// Decision is the cumulative level (in baseline-fractions) that
	// triggers a flag. Defaults to 0.03 (e.g. six intervals at 1% excess
	// with 0.5% slack).
	Decision float64
	// Alpha is the baseline EWMA weight per un-flagged interval.
	// Defaults to 0.1.
	Alpha float64

	baseline    float64
	initialized bool
	sum         float64
	flags       int
	observed    int
}

// NewCUSUMDetector creates a detector seeded with the expected baseline
// (0 lets the first observation seed it).
func NewCUSUMDetector(baseline units.Watts) *CUSUMDetector {
	d := &CUSUMDetector{Slack: 0.005, Decision: 0.03, Alpha: 0.1}
	if baseline > 0 {
		d.baseline = float64(baseline)
		d.initialized = true
	}
	return d
}

// Observe processes one interval reading and reports whether the
// cumulative statistic crossed the decision level (the statistic resets
// after each flag).
func (d *CUSUMDetector) Observe(r IntervalReading) bool {
	d.observed++
	if !d.initialized {
		d.baseline = float64(r.Avg)
		d.initialized = true
		return false
	}
	dev := (float64(r.Avg) - d.baseline) / d.baseline
	d.sum += dev - d.Slack
	if d.sum < 0 {
		d.sum = 0
	}
	if d.sum >= d.Decision {
		d.flags++
		d.sum = 0
		return true
	}
	// Train the baseline only while the statistic is fully quiet: a
	// partially accumulated excursion must not teach the detector to
	// accept the very excess it is summing up.
	if d.sum == 0 {
		d.baseline += d.Alpha * (float64(r.Avg) - d.baseline)
	}
	return false
}

// Baseline returns the current baseline estimate.
func (d *CUSUMDetector) Baseline() units.Watts { return units.Watts(d.baseline) }

// Sum returns the current cumulative statistic (in baseline-fractions).
// A transition from zero to positive marks the onset of an excursion —
// the earliest online-observable moment of an anomaly — which is what
// padd's detection-latency accounting anchors on; the statistic returns
// to zero when the excursion decays or flags.
func (d *CUSUMDetector) Sum() float64 { return d.sum }

// Flags returns how many times the statistic crossed the decision level.
func (d *CUSUMDetector) Flags() int { return d.flags }

// Observed returns how many intervals have been processed.
func (d *CUSUMDetector) Observed() int { return d.observed }
