package metering

import (
	"testing"

	"repro/internal/stats"
	"repro/internal/units"
)

// feedSpikes drives the detector with a spike train: period intervals
// between spike starts, spikeLen intervals of +amp, optional per-cycle
// timing jitter drawn from rng.
func feedSpikes(d *PeriodicityDetector, cycles, period, spikeLen int,
	amp float64, jitter int, rng *stats.RNG) int {
	flags := 0
	for c := 0; c < cycles; c++ {
		gap := period - spikeLen
		if jitter > 0 {
			gap += rng.Intn(2*jitter+1) - jitter
			if gap < 1 {
				gap = 1
			}
		}
		for i := 0; i < spikeLen; i++ {
			if d.Observe(IntervalReading{Avg: units.Watts(4000 + amp)}) {
				flags++
			}
		}
		for i := 0; i < gap; i++ {
			if d.Observe(IntervalReading{Avg: 4000}) {
				flags++
			}
		}
	}
	return flags
}

func TestPeriodicityDetectsRegularTrain(t *testing.T) {
	d := NewPeriodicityDetector(4000)
	// A sub-1% spike train (30 W on 4 kW) the threshold detector ignores,
	// but perfectly periodic: 2 intervals up every 10.
	flags := feedSpikes(d, 40, 10, 2, 30, 0, nil)
	if flags == 0 {
		t.Fatal("regular spike train never flagged")
	}
	if p := d.DetectedPeriod(); p < 8 || p > 12 {
		t.Fatalf("detected period %d, want ~10", p)
	}
}

func TestPeriodicityIgnoresNoise(t *testing.T) {
	d := NewPeriodicityDetector(4000)
	rng := stats.NewRNG(7)
	flags := 0
	for i := 0; i < 400; i++ {
		if d.Observe(IntervalReading{Avg: units.Watts(4000 + rng.Norm(0, 30))}) {
			flags++
		}
	}
	if flags > 8 { // 2% false positive budget
		t.Fatalf("white noise flagged %d of 400 windows", flags)
	}
}

func TestPeriodicityIgnoresFlatLoad(t *testing.T) {
	d := NewPeriodicityDetector(4000)
	for i := 0; i < 300; i++ {
		if d.Observe(IntervalReading{Avg: 4000}) {
			t.Fatalf("flat load flagged at %d", i)
		}
	}
}

func TestPhaseJitterEvadesPeriodicity(t *testing.T) {
	regular := NewPeriodicityDetector(4000)
	jittered := NewPeriodicityDetector(4000)
	rng := stats.NewRNG(11)
	regFlags := feedSpikes(regular, 60, 10, 2, 30, 0, nil)
	jitFlags := feedSpikes(jittered, 60, 10, 2, 30, 4, rng)
	if regFlags == 0 {
		t.Fatal("regular train should be caught")
	}
	if jitFlags >= regFlags/2 {
		t.Fatalf("±40%% timing jitter should gut periodicity detection: %d vs %d",
			jitFlags, regFlags)
	}
}

func TestPeriodicityColdStart(t *testing.T) {
	d := NewPeriodicityDetector(0)
	if d.Observe(IntervalReading{Avg: 4000}) {
		t.Fatal("first observation seeds the baseline")
	}
	if d.Observed() != 1 {
		t.Fatal("observation counter wrong")
	}
}

func TestPeakAutocorrelation(t *testing.T) {
	// Perfect period-4 signal.
	xs := make([]float64, 80)
	for i := range xs {
		if i%4 == 0 {
			xs[i] = 1
		}
	}
	lag, score := peakAutocorrelation(xs, 2, 20)
	if lag != 4 {
		t.Fatalf("lag = %d, want 4", lag)
	}
	if score < 0.5 {
		t.Fatalf("score = %v, want strong", score)
	}
	// Constant signal has zero autocorrelation energy.
	if _, s := peakAutocorrelation(make([]float64, 50), 2, 10); s != 0 {
		t.Fatalf("constant signal score = %v", s)
	}
}
