package metering

import (
	"testing"

	"repro/internal/units"
)

func TestCUSUMColdStart(t *testing.T) {
	d := NewCUSUMDetector(0)
	if d.Observe(IntervalReading{Avg: 1000}) {
		t.Fatal("first observation seeds the baseline")
	}
	if d.Baseline() != 1000 {
		t.Fatalf("baseline = %v", d.Baseline())
	}
}

func TestCUSUMAccumulatesSubThresholdExcess(t *testing.T) {
	// A persistent 1% excess is invisible to a single-interval threshold
	// of 3% but accumulates to a CUSUM flag within a handful of intervals.
	d := NewCUSUMDetector(1000)
	flagged := -1
	for i := 0; i < 20; i++ {
		if d.Observe(IntervalReading{Avg: 1010}) {
			flagged = i
			break
		}
	}
	if flagged < 0 {
		t.Fatal("persistent 1% excess never flagged")
	}
	// (1% - 0.5% slack) per interval → 0.03 decision in 6 intervals.
	if flagged > 8 {
		t.Fatalf("flag delayed to interval %d", flagged)
	}
}

func TestCUSUMIgnoresNoise(t *testing.T) {
	d := NewCUSUMDetector(1000)
	// Zero-mean wobble inside the slack never flags.
	vals := []float64{1003, 997, 1004, 996, 1002, 998, 1004, 996}
	for i := 0; i < 40; i++ {
		if d.Observe(IntervalReading{Avg: units.Watts(vals[i%len(vals)])}) {
			t.Fatalf("noise flagged at %d", i)
		}
	}
}

func TestCUSUMResetsAfterFlag(t *testing.T) {
	d := NewCUSUMDetector(1000)
	count := 0
	for i := 0; i < 30; i++ {
		if d.Observe(IntervalReading{Avg: 1015}) {
			count++
		}
	}
	if count < 2 {
		t.Fatalf("sustained excess should flag repeatedly, got %d", count)
	}
	if d.Flags() != count {
		t.Fatalf("flag counter %d vs %d observed", d.Flags(), count)
	}
	if d.Observed() != 30 {
		t.Fatalf("observed = %d", d.Observed())
	}
}

func TestCUSUMBaselineTracksQuietDrift(t *testing.T) {
	d := NewCUSUMDetector(1000)
	v := 1000.0
	for i := 0; i < 400; i++ {
		v *= 1.0003
		d.Observe(IntervalReading{Avg: units.Watts(v)})
	}
	if float64(d.Baseline()) < v*0.9 {
		t.Fatalf("baseline %v did not track drift to %v", d.Baseline(), v)
	}
}

func TestCUSUMVsThresholdOnStealthyTrain(t *testing.T) {
	// A spike train whose interval averages sit at 0.8% excess: under the
	// 1% threshold detector's radar, but cumulative for CUSUM.
	th := NewDetector(1000)
	cu := NewCUSUMDetector(1000)
	thFlags, cuFlags := 0, 0
	for i := 0; i < 60; i++ {
		r := IntervalReading{Avg: 1008}
		if th.Observe(r) {
			thFlags++
		}
		if cu.Observe(r) {
			cuFlags++
		}
	}
	if thFlags != 0 {
		t.Fatalf("threshold detector should miss 0.8%% excess, flagged %d", thFlags)
	}
	if cuFlags == 0 {
		t.Fatal("CUSUM should catch the persistent 0.8% excess")
	}
}
