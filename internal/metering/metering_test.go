package metering

import (
	"math"
	"testing"
	"time"

	"repro/internal/units"
)

func TestMeterValidation(t *testing.T) {
	if _, err := NewMeter(0, 0, 1); err == nil {
		t.Error("zero interval should fail")
	}
	if _, err := NewMeter(time.Second, -1, 1); err == nil {
		t.Error("negative noise should fail")
	}
}

func TestMeterAveragesExactly(t *testing.T) {
	m, _ := NewMeter(10*time.Second, 0, 1)
	var readings []IntervalReading
	// 5 s at 100 W then 5 s at 300 W: average 200 W.
	readings = append(readings, m.Record(100, 5*time.Second)...)
	readings = append(readings, m.Record(300, 5*time.Second)...)
	if len(readings) != 1 {
		t.Fatalf("readings = %d, want 1", len(readings))
	}
	if got := readings[0].Avg; math.Abs(float64(got-200)) > 1e-9 {
		t.Fatalf("avg = %v, want 200", got)
	}
	if readings[0].Start != 0 {
		t.Fatalf("start = %v, want 0", readings[0].Start)
	}
}

func TestMeterSpansMultipleIntervals(t *testing.T) {
	m, _ := NewMeter(time.Second, 0, 1)
	readings := m.Record(500, 3500*time.Millisecond)
	if len(readings) != 3 {
		t.Fatalf("readings = %d, want 3", len(readings))
	}
	for i, r := range readings {
		if math.Abs(float64(r.Avg-500)) > 1e-9 {
			t.Errorf("reading %d avg = %v", i, r.Avg)
		}
		if r.Start != time.Duration(i)*time.Second {
			t.Errorf("reading %d start = %v", i, r.Start)
		}
	}
}

func TestMeterPartialIntervalPending(t *testing.T) {
	m, _ := NewMeter(10*time.Second, 0, 1)
	if got := m.Record(100, 9*time.Second); len(got) != 0 {
		t.Fatalf("incomplete interval emitted %d readings", len(got))
	}
	got := m.Record(100, time.Second)
	if len(got) != 1 {
		t.Fatalf("completion emitted %d readings", len(got))
	}
}

func TestMeterNoiseAveragesDown(t *testing.T) {
	spread := func(interval time.Duration) float64 {
		m, _ := NewMeter(interval, 50, 42)
		var vals []float64
		for len(vals) < 200 {
			for _, r := range m.Record(1000, interval) {
				vals = append(vals, float64(r.Avg))
			}
		}
		sum, sum2 := 0.0, 0.0
		for _, v := range vals {
			sum += v
			sum2 += v * v
		}
		mean := sum / float64(len(vals))
		return math.Sqrt(sum2/float64(len(vals)) - mean*mean)
	}
	fine := spread(time.Second)
	coarse := spread(100 * time.Second)
	if coarse >= fine/3 {
		t.Fatalf("noise should shrink ~10x from 1s to 100s: fine %v, coarse %v", fine, coarse)
	}
}

func TestDetectorFlagsExcess(t *testing.T) {
	d := NewDetector(1000)
	if d.Observe(IntervalReading{Avg: 1005}) {
		t.Error("0.5% excess should not flag at 1% threshold")
	}
	if !d.Observe(IntervalReading{Avg: 1020}) {
		t.Error("2% excess should flag")
	}
	if d.Flags() != 1 || d.Observed() != 2 {
		t.Errorf("counters: flags=%d observed=%d", d.Flags(), d.Observed())
	}
}

func TestDetectorColdStart(t *testing.T) {
	d := NewDetector(0)
	if d.Observe(IntervalReading{Avg: 800}) {
		t.Error("first observation seeds the baseline, never flags")
	}
	if got := d.Baseline(); got != 800 {
		t.Errorf("baseline = %v, want 800", got)
	}
	if !d.Observe(IntervalReading{Avg: 900}) {
		t.Error("12.5% excess should flag")
	}
}

func TestDetectorBaselineAdaptsOnlyOnQuietIntervals(t *testing.T) {
	d := NewDetector(1000)
	before := d.Baseline()
	d.Observe(IntervalReading{Avg: 2000}) // flagged: must not train baseline
	if d.Baseline() != before {
		t.Fatal("flagged interval trained the baseline")
	}
	d.Observe(IntervalReading{Avg: 1005}) // quiet: trains baseline
	if d.Baseline() <= before {
		t.Fatal("quiet interval should nudge the baseline up")
	}
}

func TestDetectorTracksSlowDrift(t *testing.T) {
	d := NewDetector(1000)
	// Load drifts up 0.05% per interval: never flags, baseline follows.
	v := 1000.0
	for i := 0; i < 500; i++ {
		v *= 1.0005
		if d.Observe(IntervalReading{Avg: units.Watts(v)}) {
			t.Fatalf("slow drift flagged at interval %d", i)
		}
	}
	if float64(d.Baseline()) < v*0.8 {
		t.Fatalf("baseline %v failed to track drift to %v", d.Baseline(), v)
	}
}

func TestDetectionRate(t *testing.T) {
	interval := 10 * time.Second
	spikes := []time.Duration{
		2 * time.Second,  // interval 0
		15 * time.Second, // interval 1
		25 * time.Second, // interval 2
		55 * time.Second, // interval 5
	}
	flagged := []IntervalReading{
		{Start: 0},
		{Start: 20 * time.Second},
	}
	got := DetectionRate(spikes, flagged, interval)
	if got != 0.5 {
		t.Fatalf("DetectionRate = %v, want 0.5", got)
	}
	if DetectionRate(nil, flagged, interval) != 0 {
		t.Error("no spikes should yield rate 0")
	}
	if DetectionRate(spikes, nil, interval) != 0 {
		t.Error("no flags should yield rate 0")
	}
}

func TestEndToEndSpikeVisibilityByInterval(t *testing.T) {
	// A synthetic rack: 4 kW baseline, 4 s / 600 W spikes every 10 s.
	// A 5 s meter sees interval averages jump ~9–12%; a 5-minute meter sees
	// ~2.4% — both above a 1% threshold here, but the fine meter flags only
	// spike intervals while the coarse meter flags everything, showing why
	// coarse metering cannot localize spikes.
	run := func(interval time.Duration) (rate float64) {
		m, _ := NewMeter(interval, 0, 7)
		d := NewDetector(4000)
		var spikes []time.Duration
		var flagged []IntervalReading
		const tick = time.Second
		for at := time.Duration(0); at < 10*time.Minute; at += tick {
			p := units.Watts(4000)
			inSpike := at%(10*time.Second) < 4*time.Second
			if inSpike {
				p += 600
				if at%(10*time.Second) == 0 {
					spikes = append(spikes, at)
				}
			}
			for _, r := range m.Record(p, tick) {
				if d.Observe(r) {
					flagged = append(flagged, r)
				}
			}
		}
		return DetectionRate(spikes, flagged, interval)
	}
	fine := run(5 * time.Second)
	if fine < 0.9 {
		t.Errorf("fine meter should detect nearly all dense spikes, got %v", fine)
	}
}
