// Package powersim models the electrical substrate of a data center
// cluster: server power draw (with DVFS capping), rack and cluster power
// distribution units with per-outlet soft limits (the oversubscription
// model of the paper's §2.2), and circuit breakers with inverse-time trip
// behaviour.
package powersim

import (
	"fmt"
	"math"

	"repro/internal/units"
)

// ServerModel is the utilization→power model for one server. The paper's
// evaluation uses the HP ProLiant DL585 G5 SPECpower points: 299 W active
// idle, 521 W peak.
type ServerModel struct {
	// Idle is the active-idle power draw.
	Idle units.Watts
	// Peak is the full-utilization power draw (nameplate).
	Peak units.Watts
	// DVFSExponent relates frequency scaling to dynamic power:
	// dynamic ∝ freq^DVFSExponent. 0 selects 2.4 (near-cubic voltage
	// scaling tempered by uncore power).
	DVFSExponent float64
}

// DL585G5 is the evaluated server model.
var DL585G5 = ServerModel{Idle: 299, Peak: 521}

// dvfsExponent returns the effective exponent.
func (m ServerModel) dvfsExponent() float64 {
	if m.DVFSExponent == 0 {
		return 2.4
	}
	return m.DVFSExponent
}

// Validate reports a configuration error, if any.
func (m ServerModel) Validate() error {
	if m.Idle < 0 || m.Peak <= 0 || m.Peak < m.Idle {
		return fmt.Errorf("powersim: invalid server model idle=%v peak=%v", m.Idle, m.Peak)
	}
	return nil
}

// Power returns the draw of a server running at demanded utilization
// util ∈ [0,1] with its clock scaled to freq ∈ (0,1]. When demand exceeds
// the scaled capacity the server saturates at the capped frequency.
func (m ServerModel) Power(util, freq float64) units.Watts {
	return m.PowerCoef(freq).Power(util)
}

// PowerCoef holds the frequency-dependent factors of the power model,
// precomputed so a batch of servers sharing one frequency (a rack under a
// single DVFS cap) evaluates Power without a math.Pow per server. The
// per-utilization arithmetic is exactly Power's, so batched and direct
// evaluation are bit-identical.
type PowerCoef struct {
	freq  float64 // clamped frequency
	scale float64 // Pow(freq, dvfsExponent-1)
	idle  units.Watts
	span  float64 // float64(Peak - Idle)
}

// PowerCoef precomputes the evaluation coefficients for one frequency.
func (m ServerModel) PowerCoef(freq float64) PowerCoef {
	f := clampFreq(freq)
	// Dynamic power scales with the voltage/frequency operating point.
	// math.Pow(1, y) == 1 exactly for any y, so the uncapped fast path
	// skips the call without changing a bit.
	scale := 1.0
	if f != 1 {
		scale = math.Pow(f, m.dvfsExponent()-1)
	}
	return PowerCoef{freq: f, scale: scale, idle: m.Idle, span: float64(m.Peak - m.Idle)}
}

// Power returns the draw at the coefficient's frequency for one server's
// demanded utilization.
func (c PowerCoef) Power(util float64) units.Watts {
	util = clamp01(util)
	delivered := math.Min(util, c.freq)
	// Dynamic power scales with delivered work and with the
	// voltage/frequency operating point.
	return c.idle + units.Watts(c.span*delivered*c.scale)
}

// Throughput returns the fraction of demanded work completed at the given
// frequency cap: 1 when demand fits under the cap, freq/util when it
// saturates.
func (m ServerModel) Throughput(util, freq float64) float64 {
	util = clamp01(util)
	freq = clampFreq(freq)
	if util <= 0 {
		return 1
	}
	return math.Min(util, freq) / util
}

// UtilizationFor inverts Power at full frequency: the utilization that
// draws p. It clamps to [0,1].
func (m ServerModel) UtilizationFor(p units.Watts) float64 {
	if m.Peak == m.Idle {
		return 0
	}
	return clamp01(float64(p-m.Idle) / float64(m.Peak-m.Idle))
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

func clampFreq(f float64) float64 {
	// Real DVFS floors well above zero; 0.1 keeps the model sane if a
	// scheme misbehaves.
	if f < 0.1 {
		return 0.1
	}
	if f > 1 {
		return 1
	}
	return f
}
