package powersim

import (
	"testing"
	"time"

	"repro/internal/units"
)

func stepFor(b *Breaker, load units.Watts, d, tick time.Duration) (tripped bool, at time.Duration) {
	for elapsed := time.Duration(0); elapsed < d; elapsed += tick {
		if b.Step(load, tick) {
			return true, elapsed + tick
		}
	}
	return false, d
}

func TestBreakerHoldsRatedLoadIndefinitely(t *testing.T) {
	b := NewBreaker(1000)
	if tripped, _ := stepFor(b, 1000, time.Hour, time.Second); tripped {
		t.Fatal("breaker tripped at rated load")
	}
	if b.Heat() != 0 {
		t.Fatalf("heat accumulated at rated load: %v", b.Heat())
	}
}

func TestBreakerTripsOnSustainedOverload(t *testing.T) {
	b := NewBreaker(1000)
	tripped, at := stepFor(b, 2000, time.Minute, 100*time.Millisecond)
	if !tripped {
		t.Fatal("breaker did not trip on 2x overload")
	}
	// TripHeat 10, heat rate (4-1)=3/s → ~3.33 s.
	if at < 3*time.Second || at > 4*time.Second {
		t.Fatalf("2x overload tripped at %v, want ~3.3 s", at)
	}
}

func TestBreakerToleratesBriefOverload(t *testing.T) {
	b := NewBreaker(1000)
	// One-second 2x spikes with long recovery between them never trip.
	for i := 0; i < 20; i++ {
		if tripped, _ := stepFor(b, 2000, time.Second, 100*time.Millisecond); tripped {
			t.Fatalf("tripped on brief spike %d", i)
		}
		stepFor(b, 500, 10*time.Minute, time.Second) // cool fully
	}
}

func TestBreakerAccumulatesRepeatedSpikes(t *testing.T) {
	b := NewBreaker(1000)
	// Back-to-back 2x spikes with insufficient cooling eventually trip.
	trippedEver := false
	for i := 0; i < 30 && !trippedEver; i++ {
		tripped, _ := stepFor(b, 2000, time.Second, 100*time.Millisecond)
		trippedEver = tripped
		if !trippedEver {
			tripped, _ = stepFor(b, 500, time.Second, 100*time.Millisecond)
			trippedEver = tripped
		}
	}
	if !trippedEver {
		t.Fatal("dense spike train never tripped the breaker")
	}
}

func TestBreakerInstantTrip(t *testing.T) {
	b := NewBreaker(1000)
	if !b.Step(6000, time.Millisecond) {
		t.Fatal("6x overload should trip instantly")
	}
}

func TestBreakerStaysTripped(t *testing.T) {
	b := NewBreaker(1000)
	b.Step(10000, time.Millisecond)
	if !b.Tripped() {
		t.Fatal("should be tripped")
	}
	if !b.Step(0, time.Second) {
		t.Fatal("tripped breaker should stay tripped at zero load")
	}
}

func TestBreakerReset(t *testing.T) {
	b := NewBreaker(1000)
	b.Step(10000, time.Millisecond)
	b.Reset()
	if b.Tripped() {
		t.Fatal("reset breaker should be closed")
	}
	if b.Heat() != 0 {
		t.Fatal("reset should clear heat")
	}
	if tripped, _ := stepFor(b, 900, time.Minute, time.Second); tripped {
		t.Fatal("reset breaker tripped under rated load")
	}
}

func TestBreakerTrippedAt(t *testing.T) {
	b := NewBreaker(1000)
	stepFor(b, 900, 10*time.Second, time.Second)
	tripped, _ := stepFor(b, 3000, time.Minute, 100*time.Millisecond)
	if !tripped {
		t.Fatal("should have tripped")
	}
	at := b.TrippedAt()
	// 3x overload: heat rate 8/s → ~1.25 s after the 10 s preamble.
	if at < 11*time.Second || at > 12*time.Second {
		t.Fatalf("TrippedAt = %v, want ~11.3 s", at)
	}
}

func TestTimeToTrip(t *testing.T) {
	b := NewBreaker(1000)
	if got := b.TimeToTrip(1.0); got >= 0 {
		t.Errorf("rated load should never trip, got %v", got)
	}
	if got := b.TimeToTrip(0.5); got >= 0 {
		t.Errorf("partial load should never trip, got %v", got)
	}
	if got := b.TimeToTrip(10); got != 0 {
		t.Errorf("instant region should return 0, got %v", got)
	}
	got := b.TimeToTrip(2)
	want := time.Second * 10 / 3
	if got < want-time.Millisecond || got > want+time.Millisecond {
		t.Errorf("TimeToTrip(2) = %v, want ~%v", got, want)
	}
	// Inverse-time: higher overload trips faster.
	if b.TimeToTrip(3) >= b.TimeToTrip(2) {
		t.Error("trip curve is not inverse-time")
	}
}

func TestTimeToTripMatchesSimulation(t *testing.T) {
	for _, ratio := range []float64{1.5, 2, 3, 4} {
		b := NewBreaker(1000)
		predicted := b.TimeToTrip(ratio)
		_, at := stepFor(b, units.Watts(1000*ratio), time.Minute, 10*time.Millisecond)
		diff := at - predicted
		if diff < 0 {
			diff = -diff
		}
		if diff > 50*time.Millisecond {
			t.Errorf("ratio %v: predicted %v, simulated %v", ratio, predicted, at)
		}
	}
}

func TestBreakerCooling(t *testing.T) {
	b := NewBreaker(1000)
	stepFor(b, 1500, 2*time.Second, 100*time.Millisecond) // build some heat
	h1 := b.Heat()
	if h1 <= 0 {
		t.Fatal("no heat accumulated")
	}
	stepFor(b, 500, 5*time.Minute, time.Second)
	h2 := b.Heat()
	if h2 >= h1*0.5 {
		t.Fatalf("heat did not decay: %v -> %v", h1, h2)
	}
}

func TestBreakerValidate(t *testing.T) {
	if err := (&Breaker{}).Validate(); err == nil {
		t.Error("zero rating should fail validation")
	}
	if err := (&Breaker{Rated: 100, TripHeat: -1}).Validate(); err == nil {
		t.Error("negative trip heat should fail validation")
	}
	if err := NewBreaker(100).Validate(); err != nil {
		t.Errorf("default breaker should validate: %v", err)
	}
}
