package powersim

import (
	"testing"

	"repro/internal/units"
)

func TestTopologyEfficiencyOrdering(t *testing.T) {
	// The paper's motivation: DEB options waste far less than
	// double-conversion UPSs in the normal path.
	prev := -1.0
	for _, topo := range Topologies() {
		m := topo.Model()
		if m.PathEfficiency <= prev {
			t.Fatalf("path efficiency should increase through the options, %v broke it", topo)
		}
		prev = m.PathEfficiency
		if m.PathEfficiency <= 0 || m.PathEfficiency > 1 {
			t.Fatalf("%v path efficiency out of range: %v", topo, m.PathEfficiency)
		}
		if m.BackupEfficiency <= 0 || m.BackupEfficiency > 1 {
			t.Fatalf("%v backup efficiency out of range: %v", topo, m.BackupEfficiency)
		}
	}
}

func TestOnlyCentralUPSIsSPOF(t *testing.T) {
	for _, topo := range Topologies() {
		want := topo == CentralUPS
		if got := topo.Model().SPOF; got != want {
			t.Errorf("%v SPOF = %v, want %v", topo, got, want)
		}
	}
}

func TestConversionLoss(t *testing.T) {
	// Central UPS at 88% efficiency serving 880 kW draws 1 MW: 120 kW lost.
	loss := CentralUPS.ConversionLoss(880 * units.Kilowatt)
	if loss < 119*units.Kilowatt || loss > 121*units.Kilowatt {
		t.Fatalf("loss = %v, want ~120 kW", loss)
	}
	if got := CentralUPS.ConversionLoss(0); got != 0 {
		t.Fatalf("zero load loss = %v", got)
	}
	if got := CentralUPS.ConversionLoss(-100); got != 0 {
		t.Fatalf("negative load loss = %v", got)
	}
	// DEB options lose an order of magnitude less.
	if TopOfRackDEB.ConversionLoss(880*units.Kilowatt) > loss/10 {
		t.Fatal("DEB conversion loss should be <10% of central UPS loss")
	}
}

func TestAnnualLoss(t *testing.T) {
	// The annual loss of a central UPS on a 1 MW load is hundreds of MWh.
	kwh := CentralUPS.AnnualLossKWh(units.Megawatt)
	if kwh < 1e6 || kwh > 1.5e6 {
		t.Fatalf("annual loss = %v kWh, want ~1.2M", kwh)
	}
}

func TestTopologyStrings(t *testing.T) {
	names := map[Topology]string{
		CentralUPS: "central-UPS", EndOfRowUPS: "end-of-row-UPS",
		TopOfRackDEB: "top-of-rack-DEB", PerNodeDEB: "per-node-DEB",
	}
	for topo, want := range names {
		if topo.String() != want {
			t.Errorf("%d name = %q, want %q", int(topo), topo.String(), want)
		}
	}
	if Topology(9).String() != "Topology(9)" {
		t.Error("unknown topology formatting wrong")
	}
	if Topology(9).Model().PathEfficiency != 1 {
		t.Error("unknown topology should be lossless")
	}
}

func TestPSUEfficiencyCurve(t *testing.T) {
	if PSUEfficiency(0) != 0 {
		t.Error("no load, no efficiency")
	}
	if PSUEfficiency(-0.5) != 0 {
		t.Error("negative load should be 0")
	}
	// Monotone rise to the 50% sweet spot, gentle droop after.
	if !(PSUEfficiency(0.05) < PSUEfficiency(0.2)) {
		t.Error("efficiency should rise from light load")
	}
	if !(PSUEfficiency(0.2) < PSUEfficiency(0.5)) {
		t.Error("efficiency should peak near half load")
	}
	if !(PSUEfficiency(0.5) > PSUEfficiency(1.0)) {
		t.Error("efficiency should droop past the sweet spot")
	}
	for _, f := range []float64{0.01, 0.1, 0.3, 0.5, 0.8, 1.0, 1.5} {
		e := PSUEfficiency(f)
		if e < 0.5 || e > 1 {
			t.Errorf("PSUEfficiency(%v) = %v out of plausible range", f, e)
		}
	}
	// The curve is continuous at its breakpoints (within a percent).
	pairs := [][2]float64{{0.0999, 0.1001}, {0.4999, 0.5001}}
	for _, p := range pairs {
		if d := PSUEfficiency(p[1]) - PSUEfficiency(p[0]); d > 0.01 || d < -0.01 {
			t.Errorf("discontinuity at %v: %v", p[0], d)
		}
	}
}
