package powersim

import (
	"math"
	"testing"
	"time"

	"repro/internal/units"
)

func TestNewPDUDefaults(t *testing.T) {
	pdu, err := NewPDU(NewBreaker(4000), 4)
	if err != nil {
		t.Fatal(err)
	}
	if pdu.Outlets() != 4 {
		t.Fatalf("Outlets = %d", pdu.Outlets())
	}
	for i := 0; i < 4; i++ {
		if pdu.SoftLimit(i) != 1000 {
			t.Fatalf("default soft limit[%d] = %v, want equal share 1000", i, pdu.SoftLimit(i))
		}
	}
	if pdu.Budget() != 4000 {
		t.Fatalf("Budget = %v", pdu.Budget())
	}
}

func TestNewPDUValidation(t *testing.T) {
	if _, err := NewPDU(NewBreaker(0), 4); err == nil {
		t.Error("bad breaker should fail")
	}
	if _, err := NewPDU(NewBreaker(100), 0); err == nil {
		t.Error("zero outlets should fail")
	}
}

func TestSetSoftLimit(t *testing.T) {
	pdu, _ := NewPDU(NewBreaker(4000), 2)
	if err := pdu.SetSoftLimit(0, 1500); err != nil {
		t.Fatal(err)
	}
	if pdu.SoftLimit(0) != 1500 {
		t.Fatal("soft limit not set")
	}
	if err := pdu.SetSoftLimit(5, 100); err == nil {
		t.Error("out-of-range outlet should fail")
	}
	if err := pdu.SetSoftLimit(0, -1); err == nil {
		t.Error("negative limit should fail")
	}
}

func TestPDUStepCountsViolationsAndPeak(t *testing.T) {
	pdu, _ := NewPDU(NewBreaker(4000), 2)
	pdu.Step([]units.Watts{1500, 800}, time.Second) // outlet 0 violates its 2000... no
	// Default soft limits are 2000 each; make them tight.
	pdu.SetSoftLimit(0, 1000)
	pdu.SetSoftLimit(1, 1000)
	_, total := pdu.Step([]units.Watts{1500, 800}, time.Second)
	if total != 2300 {
		t.Fatalf("total = %v", total)
	}
	if pdu.Violations() != 1 {
		t.Fatalf("violations = %d, want 1", pdu.Violations())
	}
	pdu.Step([]units.Watts{1200, 1100}, time.Second)
	if pdu.Violations() != 3 {
		t.Fatalf("violations = %d, want 3", pdu.Violations())
	}
	if pdu.PeakDraw() != 2300 {
		t.Fatalf("peak = %v, want 2300", pdu.PeakDraw())
	}
}

func TestPDUBreakerTripsOnAggregate(t *testing.T) {
	pdu, _ := NewPDU(NewBreaker(2000), 2)
	tripped := false
	for i := 0; i < 100 && !tripped; i++ {
		tripped, _ = pdu.Step([]units.Watts{2000, 2000}, 100*time.Millisecond)
	}
	if !tripped {
		t.Fatal("PDU breaker should trip on sustained 2x aggregate overload")
	}
	if !pdu.Breaker().Tripped() {
		t.Fatal("breaker state should reflect the trip")
	}
}

func TestOversubscriptionPlanBudgets(t *testing.T) {
	plan := OversubscriptionPlan{RackNameplate: 5210, Racks: 22, Ratio: 0.65}
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	wantPDU := units.Watts(0.65 * 22 * 5210)
	if got := plan.PDUBudget(); math.Abs(float64(got-wantPDU)) > 1e-9 {
		t.Fatalf("PDUBudget = %v, want %v", got, wantPDU)
	}
	wantRack := units.Watts(0.65 * 5210)
	if got := plan.RackBudget(3); math.Abs(float64(got-wantRack)) > 1e-9 {
		t.Fatalf("RackBudget = %v, want %v", got, wantRack)
	}
}

func TestOversubscriptionPlanLambda(t *testing.T) {
	plan := OversubscriptionPlan{
		RackNameplate: 1000, Racks: 2, Ratio: 0.8,
		Lambda: []float64{0.9, 0.7},
	}
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := plan.RackBudget(0); got != 900 {
		t.Fatalf("RackBudget(0) = %v", got)
	}
	if got := plan.RackBudget(1); got != 700 {
		t.Fatalf("RackBudget(1) = %v", got)
	}
}

func TestOversubscriptionPlanValidation(t *testing.T) {
	bad := []OversubscriptionPlan{
		{RackNameplate: 0, Racks: 2, Ratio: 0.5},
		{RackNameplate: 100, Racks: 0, Ratio: 0.5},
		{RackNameplate: 100, Racks: 2, Ratio: 0},
		{RackNameplate: 100, Racks: 2, Ratio: 1.5},
		{RackNameplate: 100, Racks: 2, Ratio: 0.5, Lambda: []float64{0.5}},
		{RackNameplate: 100, Racks: 2, Ratio: 0.5, Lambda: []float64{0.5, 1.5}},
		// Σλ·Pr = 190 > PPDU = 100: violates eq. 2.
		{RackNameplate: 100, Racks: 2, Ratio: 0.5, Lambda: []float64{0.9, 1.0}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d should fail validation: %+v", i, p)
		}
	}
}

func TestRequiredShaving(t *testing.T) {
	plan := OversubscriptionPlan{RackNameplate: 1000, Racks: 4, Ratio: 0.7}
	if got := plan.RequiredShaving(0, 600); got != 0 {
		t.Fatalf("under budget should need 0 shaving, got %v", got)
	}
	if got := plan.RequiredShaving(0, 900); got != 200 {
		t.Fatalf("RequiredShaving = %v, want 200", got)
	}
}

func TestPlanBuild(t *testing.T) {
	plan := OversubscriptionPlan{RackNameplate: 1000, Racks: 3, Ratio: 0.6}
	pdu, err := plan.Build()
	if err != nil {
		t.Fatal(err)
	}
	if pdu.Outlets() != 3 {
		t.Fatalf("outlets = %d", pdu.Outlets())
	}
	if got := pdu.Budget(); math.Abs(float64(got-1800)) > 1e-9 {
		t.Fatalf("budget = %v", got)
	}
	for i := 0; i < 3; i++ {
		if got := pdu.SoftLimit(i); math.Abs(float64(got-600)) > 1e-9 {
			t.Fatalf("soft limit[%d] = %v", i, got)
		}
	}
	if _, err := (OversubscriptionPlan{}).Build(); err == nil {
		t.Error("invalid plan should not build")
	}
}
