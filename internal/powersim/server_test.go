package powersim

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/units"
)

func TestDL585G5Points(t *testing.T) {
	if got := DL585G5.Power(0, 1); got != 299 {
		t.Fatalf("idle power = %v, want 299 W", got)
	}
	if got := DL585G5.Power(1, 1); got != 521 {
		t.Fatalf("peak power = %v, want 521 W", got)
	}
}

func TestPowerLinearInUtilization(t *testing.T) {
	mid := DL585G5.Power(0.5, 1)
	want := units.Watts(299 + 0.5*(521-299))
	if math.Abs(float64(mid-want)) > 1e-9 {
		t.Fatalf("Power(0.5) = %v, want %v", mid, want)
	}
}

func TestPowerClampsUtilization(t *testing.T) {
	if got := DL585G5.Power(1.7, 1); got != 521 {
		t.Fatalf("Power(1.7) = %v, want clamped 521", got)
	}
	if got := DL585G5.Power(-0.5, 1); got != 299 {
		t.Fatalf("Power(-0.5) = %v, want clamped 299", got)
	}
}

func TestDVFSReducesPower(t *testing.T) {
	full := DL585G5.Power(1, 1)
	capped := DL585G5.Power(1, 0.8)
	if capped >= full {
		t.Fatalf("capping did not reduce power: %v vs %v", capped, full)
	}
	// Dynamic power scales as freq^2.4: 0.8^2.4 ≈ 0.585.
	wantDyn := (521.0 - 299.0) * math.Pow(0.8, 2.4)
	if math.Abs(float64(capped)-299-wantDyn) > 1e-9 {
		t.Fatalf("capped dynamic = %v, want %v", float64(capped)-299, wantDyn)
	}
}

func TestDVFSExponentOverride(t *testing.T) {
	m := ServerModel{Idle: 100, Peak: 200, DVFSExponent: 1}
	// Exponent 1: power tracks delivered work only.
	if got := m.Power(1, 0.5); got != 150 {
		t.Fatalf("Power = %v, want 150", got)
	}
}

func TestThroughput(t *testing.T) {
	cases := []struct {
		util, freq, want float64
	}{
		{0.5, 1, 1},   // demand fits
		{0.5, 0.5, 1}, // exactly fits
		{1, 0.8, 0.8}, // saturated
		{0.9, 0.6, 0.6 / 0.9},
		{0, 0.5, 1}, // idle server completes "all" of nothing
	}
	for _, c := range cases {
		if got := DL585G5.Throughput(c.util, c.freq); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Throughput(%v, %v) = %v, want %v", c.util, c.freq, got, c.want)
		}
	}
}

func TestThroughputNeverExceedsOne(t *testing.T) {
	f := func(u, fr float64) bool {
		if math.IsNaN(u) || math.IsNaN(fr) {
			return true
		}
		got := DL585G5.Throughput(u, fr)
		return got >= 0 && got <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUtilizationForInvertsPower(t *testing.T) {
	for _, u := range []float64{0, 0.25, 0.5, 0.75, 1} {
		p := DL585G5.Power(u, 1)
		if got := DL585G5.UtilizationFor(p); math.Abs(got-u) > 1e-12 {
			t.Errorf("UtilizationFor(Power(%v)) = %v", u, got)
		}
	}
	if got := DL585G5.UtilizationFor(10000); got != 1 {
		t.Errorf("UtilizationFor above peak should clamp to 1, got %v", got)
	}
	if got := DL585G5.UtilizationFor(0); got != 0 {
		t.Errorf("UtilizationFor below idle should clamp to 0, got %v", got)
	}
}

func TestFrequencyFloor(t *testing.T) {
	// Absurd frequency requests clamp instead of zeroing the machine.
	p := DL585G5.Power(1, 0)
	if p <= DL585G5.Idle || p >= DL585G5.Peak {
		t.Fatalf("floor-frequency power = %v, want between idle and peak", p)
	}
}

func TestServerModelValidate(t *testing.T) {
	bad := []ServerModel{
		{Idle: -1, Peak: 100},
		{Idle: 100, Peak: 0},
		{Idle: 200, Peak: 100},
	}
	for _, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("Validate(%+v) should fail", m)
		}
	}
	if err := DL585G5.Validate(); err != nil {
		t.Errorf("DL585G5 should validate: %v", err)
	}
}

func TestPowerMonotoneInUtilization(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		lo, hi := clamp01(a), clamp01(b)
		if lo > hi {
			lo, hi = hi, lo
		}
		return DL585G5.Power(lo, 1) <= DL585G5.Power(hi, 1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
