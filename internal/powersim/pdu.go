package powersim

import (
	"fmt"
	"time"

	"repro/internal/units"
)

// PDU models an intelligent power distribution unit: a breaker-protected
// feed with per-outlet soft power limits that downstream racks are asked
// to respect (the iPDU budget-enforcing capability the paper's vDEB
// controller builds on). Soft limits do not physically clamp current —
// enforcement is the power-management scheme's job — but the PDU records
// violations and its breaker reacts to the real aggregate draw.
type PDU struct {
	breaker    *Breaker
	softLimits []units.Watts

	violations int
	peakDraw   units.Watts
}

// NewPDU builds a PDU with the given breaker and number of outlets.
// Outlet soft limits default to an equal share of the breaker rating.
func NewPDU(breaker *Breaker, outlets int) (*PDU, error) {
	if err := breaker.Validate(); err != nil {
		return nil, err
	}
	if outlets <= 0 {
		return nil, fmt.Errorf("powersim: PDU needs at least one outlet, got %d", outlets)
	}
	limits := make([]units.Watts, outlets)
	share := breaker.Rated / units.Watts(outlets)
	for i := range limits {
		limits[i] = share
	}
	return &PDU{breaker: breaker, softLimits: limits}, nil
}

// Outlets reports the number of outlets.
func (p *PDU) Outlets() int { return len(p.softLimits) }

// SetSoftLimit assigns the soft power limit of outlet i.
func (p *PDU) SetSoftLimit(i int, limit units.Watts) error {
	if i < 0 || i >= len(p.softLimits) {
		return fmt.Errorf("powersim: outlet %d out of range [0,%d)", i, len(p.softLimits))
	}
	if limit < 0 {
		return fmt.Errorf("powersim: soft limit must be non-negative, got %v", limit)
	}
	p.softLimits[i] = limit
	return nil
}

// SoftLimit returns the soft power limit of outlet i.
func (p *PDU) SoftLimit(i int) units.Watts { return p.softLimits[i] }

// Budget returns the PDU's total power budget (the breaker rating).
func (p *PDU) Budget() units.Watts { return p.breaker.Rated }

// Step advances the PDU by dt carrying the given per-outlet draws and
// reports whether the feed breaker is tripped. It also counts soft-limit
// violations (one per violating outlet per step).
func (p *PDU) Step(draws []units.Watts, dt time.Duration) (tripped bool, total units.Watts) {
	for i, d := range draws {
		total += d
		if i < len(p.softLimits) && d > p.softLimits[i] {
			p.violations++
		}
	}
	if total > p.peakDraw {
		p.peakDraw = total
	}
	return p.breaker.Step(total, dt), total
}

// Breaker exposes the feed breaker.
func (p *PDU) Breaker() *Breaker { return p.breaker }

// Violations reports the cumulative count of soft-limit violations.
func (p *PDU) Violations() int { return p.violations }

// PeakDraw reports the highest aggregate draw observed.
func (p *PDU) PeakDraw() units.Watts { return p.peakDraw }

// OversubscriptionPlan captures the paper's two-stage provisioning model
// (eqs. 1–2): n racks of nameplate Pr behind a PDU whose budget is only a
// fraction of n·Pr, with per-rack scaling factors λ that cap the utility
// share of each rack's draw. The gap pᵢ − λᵢ·Pr is what local batteries
// must shave.
type OversubscriptionPlan struct {
	// RackNameplate is Pr, the peak power of one rack.
	RackNameplate units.Watts
	// Racks is n.
	Racks int
	// Ratio is PPDU/(n·Pr), in (0, 1].
	Ratio float64
	// Lambda are the per-rack scaling factors; empty means equal shares of
	// the PDU budget.
	Lambda []float64
}

// Validate reports a configuration error, if any.
func (o OversubscriptionPlan) Validate() error {
	if o.RackNameplate <= 0 {
		return fmt.Errorf("powersim: rack nameplate must be positive, got %v", o.RackNameplate)
	}
	if o.Racks <= 0 {
		return fmt.Errorf("powersim: plan needs at least one rack, got %d", o.Racks)
	}
	if o.Ratio <= 0 || o.Ratio > 1 {
		return fmt.Errorf("powersim: oversubscription ratio must be in (0,1], got %v", o.Ratio)
	}
	if len(o.Lambda) != 0 && len(o.Lambda) != o.Racks {
		return fmt.Errorf("powersim: plan has %d lambdas for %d racks", len(o.Lambda), o.Racks)
	}
	sum := 0.0
	for i, l := range o.Lambda {
		if l < 0 || l > 1 {
			return fmt.Errorf("powersim: lambda[%d]=%v out of [0,1]", i, l)
		}
		sum += l
	}
	// Eq. 2: Σ λᵢ·Pr ≤ PPDU.
	if len(o.Lambda) != 0 && sum*float64(o.RackNameplate) > float64(o.PDUBudget())*(1+1e-9) {
		return fmt.Errorf("powersim: Σλ·Pr = %v exceeds PDU budget %v",
			units.Watts(sum*float64(o.RackNameplate)), o.PDUBudget())
	}
	return nil
}

// PDUBudget returns PPDU = ratio·n·Pr.
func (o OversubscriptionPlan) PDUBudget() units.Watts {
	return units.Watts(o.Ratio * float64(o.Racks) * float64(o.RackNameplate))
}

// RackBudget returns λᵢ·Pr, the utility-power budget of rack i.
func (o OversubscriptionPlan) RackBudget(i int) units.Watts {
	if len(o.Lambda) == 0 {
		return units.Watts(o.Ratio * float64(o.RackNameplate))
	}
	return units.Watts(o.Lambda[i] * float64(o.RackNameplate))
}

// RequiredShaving returns how much of a rack's demand exceeds its budget —
// the battery share bᵢ ≥ pᵢ − λᵢ·Pr demanded by eq. 1 — or 0 when demand
// fits.
func (o OversubscriptionPlan) RequiredShaving(i int, demand units.Watts) units.Watts {
	over := demand - o.RackBudget(i)
	if over < 0 {
		return 0
	}
	return over
}

// Build materializes the plan into a PDU: one breaker at the PDU budget,
// one outlet per rack with soft limit λᵢ·Pr.
func (o OversubscriptionPlan) Build() (*PDU, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	pdu, err := NewPDU(NewBreaker(o.PDUBudget()), o.Racks)
	if err != nil {
		return nil, err
	}
	for i := 0; i < o.Racks; i++ {
		if err := pdu.SetSoftLimit(i, o.RackBudget(i)); err != nil {
			return nil, err
		}
	}
	return pdu, nil
}
