package powersim

import (
	"fmt"

	"repro/internal/units"
)

// Backup power topologies, the four deployment options of the paper's
// Figure 3. The efficiency difference is the paper's §2 motivation for
// DEB: a double-conversion central UPS loses power on every watt all the
// time, while DC-coupled distributed batteries sit out of the power path.
type Topology int

// The four deployment options.
const (
	// CentralUPS is a facility-level double-conversion (AC→DC→AC) UPS.
	CentralUPS Topology = iota
	// EndOfRowUPS is a PDU-level double-conversion UPS (20-200 kW).
	EndOfRowUPS
	// TopOfRackDEB is a rack battery cabinet on the DC bus.
	TopOfRackDEB
	// PerNodeDEB is a per-server battery on the PSU's DC output.
	PerNodeDEB
)

// String implements fmt.Stringer.
func (t Topology) String() string {
	switch t {
	case CentralUPS:
		return "central-UPS"
	case EndOfRowUPS:
		return "end-of-row-UPS"
	case TopOfRackDEB:
		return "top-of-rack-DEB"
	case PerNodeDEB:
		return "per-node-DEB"
	default:
		return fmt.Sprintf("Topology(%d)", int(t))
	}
}

// Topologies lists the four options in the paper's order.
func Topologies() []Topology {
	return []Topology{CentralUPS, EndOfRowUPS, TopOfRackDEB, PerNodeDEB}
}

// TopologyModel captures the conversion chain of one deployment option.
type TopologyModel struct {
	// PathEfficiency is the fraction of input power that reaches the
	// server PSU during normal operation (double-conversion UPSs sit in
	// the path; DEB options bypass it).
	PathEfficiency float64
	// BackupEfficiency is the fraction of stored energy that reaches the
	// load during backup operation.
	BackupEfficiency float64
	// UnitScale is the typical unit size (for documentation/reports).
	UnitScale units.Watts
	// SPOF reports whether the option is a single point of failure for
	// the whole facility.
	SPOF bool
}

// Model returns the efficiency model of a topology. Values follow the
// industry figures the paper's citations use: online double-conversion
// UPSs run ~88-92% efficient at typical load; DC-coupled batteries leave
// the normal path untouched and discharge at ~96%.
func (t Topology) Model() TopologyModel {
	switch t {
	case CentralUPS:
		return TopologyModel{PathEfficiency: 0.88, BackupEfficiency: 0.85, UnitScale: 2 * units.Megawatt, SPOF: true}
	case EndOfRowUPS:
		return TopologyModel{PathEfficiency: 0.90, BackupEfficiency: 0.87, UnitScale: 100 * units.Kilowatt, SPOF: false}
	case TopOfRackDEB:
		return TopologyModel{PathEfficiency: 0.995, BackupEfficiency: 0.96, UnitScale: 3 * units.Kilowatt, SPOF: false}
	case PerNodeDEB:
		return TopologyModel{PathEfficiency: 0.998, BackupEfficiency: 0.97, UnitScale: 500, SPOF: false}
	default:
		return TopologyModel{PathEfficiency: 1, BackupEfficiency: 1}
	}
}

// ConversionLoss returns the power lost in the backup path while serving
// load during normal operation.
func (t Topology) ConversionLoss(load units.Watts) units.Watts {
	m := t.Model()
	if load <= 0 {
		return 0
	}
	return units.Watts(float64(load) * (1 - m.PathEfficiency) / m.PathEfficiency)
}

// AnnualLossKWh returns the energy wasted per year serving a constant
// load — the number the paper's PUE-improvement citations (Microsoft's
// "up to 15% PUE improvement") are about.
func (t Topology) AnnualLossKWh(load units.Watts) float64 {
	const hoursPerYear = 8760
	return float64(t.ConversionLoss(load)) * hoursPerYear / 1000
}

// PSUEfficiency models a server power supply's load-dependent efficiency
// (an 80-PLUS-style curve): poor at light load, peaking near half load.
// fraction is the PSU load as a fraction of its rating.
func PSUEfficiency(fraction float64) float64 {
	switch {
	case fraction <= 0:
		return 0
	case fraction < 0.1:
		// Light load: efficiency climbs steeply from ~70%.
		return 0.70 + 1.5*fraction
	case fraction < 0.5:
		return 0.85 + 0.175*(fraction-0.1)
	case fraction <= 1:
		// Slight droop past the 50% sweet spot.
		return 0.92 - 0.03*(fraction-0.5)
	default:
		return 0.90
	}
}
