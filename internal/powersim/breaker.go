package powersim

import (
	"fmt"
	"math"
	"time"

	"repro/internal/fixedstep"
	"repro/internal/units"
)

// Breaker is a thermal-magnetic circuit breaker with inverse-time trip
// behaviour: brief small overloads are tolerated, sustained overloads trip
// within seconds, and extreme overloads trip instantly (the magnetic
// element). The paper's attack succeeds exactly when it defeats this
// model: "tripping a circuit breaker is not an instantaneous event … once
// the overload exceeds certain threshold, it requires very short time
// (several seconds)".
//
// The thermal element integrates H' = (P/Prated)² − 1 while overloaded and
// cools exponentially otherwise; the breaker trips when H reaches
// TripHeat.
type Breaker struct {
	// Rated is the continuous power rating.
	Rated units.Watts
	// TripHeat is the thermal trip threshold in "overload-seconds".
	// At a 2× overload the heat grows at 3/s, so TripHeat 10 trips in
	// ~3.3 s. 0 selects 10.
	TripHeat float64
	// CoolTau is the exponential cooling time constant. 0 selects 300 s:
	// the bimetal element of a molded-case breaker holds heat for
	// minutes, which is why spike trains that individually look harmless
	// accumulate toward a trip.
	CoolTau time.Duration
	// InstantMultiple is the magnetic instant-trip threshold as a multiple
	// of Rated. 0 selects 6.
	InstantMultiple float64

	heat      float64
	tripped   bool
	trippedAt time.Duration
	elapsed   time.Duration

	// Cached per-dt cooling factor exp(-dt/CoolTau) (fixed-timestep
	// kernel layer): the engine steps every breaker with one constant
	// tick, so the exponential is computed once per (dt, tau) and reused
	// bit-identically. CoolTau is an exported field callers may mutate
	// between steps, so the slot also keys on the tau it was built for.
	coolKey    fixedstep.Key
	coolTauFor time.Duration
	coolFactor float64
}

// coolFactorFor returns exp(-dt/CoolTau) for the current cooling
// constant, recomputing only when dt or CoolTau changed.
func (b *Breaker) coolFactorFor(dt time.Duration) float64 {
	if tau := b.coolTau(); !b.coolKey.Hit(dt) || b.coolTauFor != tau {
		b.coolTauFor = tau
		b.coolFactor = math.Exp(-dt.Seconds() / tau.Seconds())
	}
	return b.coolFactor
}

// NewBreaker returns a breaker with the given continuous rating and
// documented default trip characteristics.
func NewBreaker(rated units.Watts) *Breaker {
	return &Breaker{Rated: rated}
}

func (b *Breaker) tripHeat() float64 {
	if b.TripHeat == 0 {
		return 10
	}
	return b.TripHeat
}

func (b *Breaker) coolTau() time.Duration {
	if b.CoolTau == 0 {
		return 300 * time.Second
	}
	return b.CoolTau
}

func (b *Breaker) instantMultiple() float64 {
	if b.InstantMultiple == 0 {
		return 6
	}
	return b.InstantMultiple
}

// Validate reports a configuration error, if any.
func (b *Breaker) Validate() error {
	if b.Rated <= 0 {
		return fmt.Errorf("powersim: breaker rating must be positive, got %v", b.Rated)
	}
	if b.TripHeat < 0 || b.InstantMultiple < 0 || b.CoolTau < 0 {
		return fmt.Errorf("powersim: breaker trip parameters must be non-negative")
	}
	return nil
}

// Step advances the breaker by dt carrying the given load and reports
// whether the breaker is (now or already) tripped. A tripped breaker
// stays tripped until Reset.
func (b *Breaker) Step(load units.Watts, dt time.Duration) bool {
	if b.tripped {
		b.elapsed += dt
		return true
	}
	ratio := float64(load) / float64(b.Rated)
	if ratio >= b.instantMultiple() {
		b.trip()
		b.elapsed += dt
		return true
	}
	if ratio > 1 {
		b.heat += (ratio*ratio - 1) * dt.Seconds()
	} else {
		b.heat *= b.coolFactorFor(dt)
	}
	b.elapsed += dt
	if b.heat >= b.tripHeat() {
		b.trip()
		return true
	}
	return false
}

// CoolN advances an untripped, non-overloaded breaker by n ticks of
// pure exponential cooling: exactly what n consecutive Step(load, dt)
// calls with load <= Rated would do. The cooling multiply is iterated
// literally — heat × factorⁿ via one Pow is not bit-identical to n
// successive multiplies, and the simulator's quiescent fast path
// promises bit-identity with the per-tick engine. Cooling never reaches
// the trip threshold (heat is non-increasing and was below it), so no
// trip check is needed. Callers must not use CoolN while the load
// exceeds the rating.
func (b *Breaker) CoolN(n int, dt time.Duration) {
	if n <= 0 {
		return
	}
	if !b.tripped && b.heat != 0 {
		f := b.coolFactorFor(dt)
		for i := 0; i < n; i++ {
			b.heat *= f
		}
	}
	b.elapsed += time.Duration(n) * dt
}

func (b *Breaker) trip() {
	b.tripped = true
	b.trippedAt = b.elapsed
}

// Tripped reports whether the breaker has tripped.
func (b *Breaker) Tripped() bool { return b.tripped }

// TrippedAt returns the elapsed simulation offset at which the breaker
// tripped. It is only meaningful when Tripped reports true.
func (b *Breaker) TrippedAt() time.Duration { return b.trippedAt }

// Heat returns the current thermal accumulator value (diagnostics).
func (b *Breaker) Heat() float64 { return b.heat }

// TripThreshold returns the effective thermal trip threshold — TripHeat,
// or its documented default when the field is zero (diagnostics).
func (b *Breaker) TripThreshold() float64 { return b.tripHeat() }

// Reset re-closes the breaker and clears its thermal state (an operator
// action after an outage).
func (b *Breaker) Reset() {
	b.tripped = false
	b.heat = 0
}

// TimeToTrip returns how long a constant overload at ratio×Rated takes to
// trip a cold breaker, or a negative duration if it never trips
// (ratio <= 1). Instant-trip overloads return 0.
func (b *Breaker) TimeToTrip(ratio float64) time.Duration {
	if ratio >= b.instantMultiple() {
		return 0
	}
	if ratio <= 1 {
		return -1
	}
	secs := b.tripHeat() / (ratio*ratio - 1)
	return time.Duration(secs * float64(time.Second))
}
